// Servebench: the load harness of the NoC timing daemon. It drives
// warm-cache analytical WCTT queries through the serve layer — vectorised
// batch-verb lines over multiple concurrent connections — and reports the
// sustained queries/sec plus the daemon's own counters (memo hit rate,
// latency quantiles). This is the million-QPS demonstration of the serving
// layer: every query travels the full protocol path (line framing, tuple
// parse, memo probe, response encode).
//
// By default the daemon runs in-process (the connections are in-memory
// pipes, so the number measures the serving stack, not the kernel's TCP
// path). With -tcp ADDR the harness dials an external daemon started with
// `noctool serve -listen ADDR` instead.
//
// Run with:
//
//	go run ./examples/servebench
//	go run ./examples/servebench -queries 2000000 -conns 4 -batch 8192
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/mesh"
	"repro/internal/serve"
)

func main() {
	queries := flag.Int("queries", 1_000_000, "total warm-cache WCTT queries to fire")
	batch := flag.Int("batch", 8192, "queries per batch-verb line")
	conns := flag.Int("conns", 2, "concurrent connections")
	size := flag.Int("size", 8, "square mesh size the queries target")
	design := flag.String("design", "waw+wap", "design point to query")
	tcp := flag.String("tcp", "", "dial an external daemon at this address instead of serving in-process")
	flag.Parse()

	d := mesh.MustDim(*size, *size)
	pairs := allPairs(d)
	fmt.Printf("servebench: %d queries (%s, %dx%d, %d flows), %d/conn-batch, %d conns\n",
		*queries, *design, *size, *size, len(pairs), *batch, *conns)

	// Pre-render each connection's request stream so the timed section
	// measures serving, not request generation.
	perConn := (*queries + *conns - 1) / *conns
	streams := make([][]byte, *conns)
	for c := range streams {
		streams[c] = renderBatches(pairs, *design, d, perConn, *batch, c)
	}

	var srv *serve.Server
	fire := func(stream []byte) (int, error) { return 0, nil }
	if *tcp == "" {
		srv = serve.New(0, 0)
		defer srv.Close()
		// Warm the model memo through the same protocol path the timed
		// queries use.
		warm := renderBatches(pairs, *design, d, len(pairs), *batch, 0)
		if err := srv.ServeLines(context.Background(), bytes.NewReader(warm), io.Discard); err != nil {
			log.Fatal(err)
		}
		fire = func(stream []byte) (int, error) {
			var count countWriter
			err := srv.ServeLines(context.Background(), bytes.NewReader(stream), &count)
			return count.lines, err
		}
	} else {
		warm := renderBatches(pairs, *design, d, len(pairs), *batch, 0)
		if _, err := fireTCP(*tcp, warm); err != nil {
			log.Fatal(err)
		}
		fire = func(stream []byte) (int, error) { return fireTCP(*tcp, stream) }
	}

	start := time.Now()
	var wg sync.WaitGroup
	responses := make([]int, *conns)
	errs := make([]error, *conns)
	for c := range streams {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			responses[c], errs[c] = fire(streams[c])
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := 0
	for c := range responses {
		if errs[c] != nil {
			log.Fatalf("conn %d: %v", c, errs[c])
		}
		total += responses[c]
	}

	qps := float64(*conns*perConn) / elapsed.Seconds()
	fmt.Printf("servebench: %d responses in %s — %.0f queries/s\n", total, elapsed.Round(time.Millisecond), qps)
	if srv != nil {
		st := srv.Stats()
		hitRate := 0.0
		if st.WCTTMemoHits+st.WCTTMemoMisses > 0 {
			hitRate = 100 * float64(st.WCTTMemoHits) / float64(st.WCTTMemoHits+st.WCTTMemoMisses)
		}
		fmt.Printf("servebench: memo hit rate %.2f%% (%d hits, %d misses, %d coalesced)\n",
			hitRate, st.WCTTMemoHits, st.WCTTMemoMisses, st.Coalesced)
		fmt.Printf("servebench: per-line latency p50 <= %s, p99 <= %s\n",
			time.Duration(st.Latency.P50NS), time.Duration(st.Latency.P99NS))
	}
}

// allPairs enumerates every distinct (src, dst) flow of the mesh.
func allPairs(d mesh.Dim) [][2]mesh.Node {
	nodes := d.AllNodes()
	pairs := make([][2]mesh.Node, 0, len(nodes)*(len(nodes)-1))
	for _, s := range nodes {
		for _, t := range nodes {
			if s != t {
				pairs = append(pairs, [2]mesh.Node{s, t})
			}
		}
	}
	return pairs
}

// renderBatches renders `queries` WCTT tuples (cycling through pairs,
// offset so connections disagree about order) into batch-verb lines.
func renderBatches(pairs [][2]mesh.Node, design string, d mesh.Dim, queries, batch, offset int) []byte {
	var buf bytes.Buffer
	id := 1
	for q := 0; q < queries; {
		n := min(batch, queries-q)
		fmt.Fprintf(&buf, `{"id":%d,"op":"batch","design":"%s","width":%d,"height":%d,"queries":[`,
			id, design, d.Width, d.Height)
		for i := 0; i < n; i++ {
			p := pairs[(offset+q+i)%len(pairs)]
			if i > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, "[%d,%d,%d,%d]", p[0].X, p[0].Y, p[1].X, p[1].Y)
		}
		buf.WriteString("]}\n")
		q += n
		id++
	}
	return buf.Bytes()
}

// countWriter counts response lines without retaining them.
type countWriter struct{ lines int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.lines += bytes.Count(p, []byte("\n"))
	return len(p), nil
}

// fireTCP writes the stream to a fresh connection and reads responses until
// the daemon answers every line (the write side is half-closed so the
// daemon sees EOF and drains the connection).
func fireTCP(addr string, stream []byte) (int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	want := bytes.Count(stream, []byte("\n"))
	var wg sync.WaitGroup
	var writeErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := conn.Write(stream); err != nil {
			writeErr = err
		}
		if cw, ok := conn.(*net.TCPConn); ok {
			_ = cw.CloseWrite()
		}
	}()
	var count countWriter
	if _, err := io.Copy(&count, conn); err != nil {
		return count.lines, err
	}
	wg.Wait()
	if writeErr != nil {
		return count.lines, writeErr
	}
	if count.lines != want {
		return count.lines, fmt.Errorf("servebench: %d responses for %d requests", count.lines, want)
	}
	return count.lines, nil
}
