// Servebench: the load harness of the NoC timing daemon. It drives
// warm-cache analytical WCTT queries through the serve layer — vectorised
// batch-verb lines over multiple concurrent connections — and reports the
// sustained queries/sec plus the daemon's own counters (memo hit rate,
// latency quantiles) and the resilience columns: protocol errors, client
// retries and reconnects, and lost responses. A lost response — a request
// that never received a trustworthy answer — fails the run with a non-zero
// exit, so CI can treat the harness as an end-to-end liveness check.
//
// By default the daemon runs in-process (the connections are in-memory
// pipes, so the number measures the serving stack, not the kernel's TCP
// path). With -tcp ADDR the harness dials an external daemon started with
// `noctool serve -listen ADDR` through serve.Client — per-attempt
// deadlines, transparent reconnect, jittered idempotent retries — so a
// flaky link degrades the retry column instead of the result.
//
// Run with:
//
//	go run ./examples/servebench
//	go run ./examples/servebench -queries 2000000 -conns 4 -batch 8192
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/mesh"
	"repro/internal/serve"
)

// connReport is one connection's resilience accounting.
type connReport struct {
	responses  int
	errors     int // answered protocol rejections (ok:false)
	retries    uint64
	reconnects uint64
	lost       int // requests with no trustworthy answer
}

func main() {
	queries := flag.Int("queries", 1_000_000, "total warm-cache WCTT queries to fire")
	batch := flag.Int("batch", 8192, "queries per batch-verb line")
	conns := flag.Int("conns", 2, "concurrent connections")
	size := flag.Int("size", 8, "square mesh size the queries target")
	design := flag.String("design", "waw+wap", "design point to query")
	tcp := flag.String("tcp", "", "dial an external daemon at this address instead of serving in-process")
	retries := flag.Int("retries", 5, "client retry budget per request (-tcp mode)")
	flag.Parse()

	d := mesh.MustDim(*size, *size)
	pairs := allPairs(d)
	fmt.Printf("servebench: %d queries (%s, %dx%d, %d flows), %d/conn-batch, %d conns\n",
		*queries, *design, *size, *size, len(pairs), *batch, *conns)

	// Pre-build each connection's batch requests so the timed section
	// measures serving, not request generation.
	perConn := (*queries + *conns - 1) / *conns
	batches := make([][]*serve.Request, *conns)
	for c := range batches {
		batches[c] = buildBatches(pairs, *design, d, perConn, *batch, c)
	}

	var srv *serve.Server
	var fire func(c int) connReport
	if *tcp == "" {
		srv = serve.New(0, 0)
		defer srv.Close()
		// Warm the model memo through the same protocol path the timed
		// queries use.
		warm := renderLines(buildBatches(pairs, *design, d, len(pairs), *batch, 0))
		if err := srv.ServeLines(context.Background(), bytes.NewReader(warm), io.Discard); err != nil {
			log.Fatal(err)
		}
		streams := make([][]byte, *conns)
		for c := range streams {
			streams[c] = renderLines(batches[c])
		}
		fire = func(c int) connReport {
			var count countWriter
			rep := connReport{}
			err := srv.ServeLines(context.Background(), bytes.NewReader(streams[c]), &count)
			rep.responses = count.lines
			rep.errors = count.failed
			if err != nil {
				log.Printf("conn %d: %v", c, err)
			}
			if lost := len(batches[c]) - count.lines; lost > 0 {
				rep.lost = lost
			}
			return rep
		}
	} else {
		warmClient := newClient(*tcp, *retries, 0)
		for _, req := range buildBatches(pairs, *design, d, len(pairs), *batch, 0) {
			if _, err := warmClient.Do(context.Background(), req); err != nil {
				log.Fatalf("warmup: %v", err)
			}
		}
		warmClient.Close()
		fire = func(c int) connReport {
			client := newClient(*tcp, *retries, int64(c)+1)
			defer client.Close()
			rep := connReport{}
			for _, req := range batches[c] {
				resp, err := client.Do(context.Background(), req)
				switch {
				case err != nil:
					rep.lost++
				case !resp.OK:
					rep.responses++
					rep.errors++
				default:
					rep.responses++
				}
			}
			st := client.Stats()
			rep.retries, rep.reconnects = st.Retries, st.Reconnects
			return rep
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	reports := make([]connReport, *conns)
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			reports[c] = fire(c)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total connReport
	for _, r := range reports {
		total.responses += r.responses
		total.errors += r.errors
		total.retries += r.retries
		total.reconnects += r.reconnects
		total.lost += r.lost
	}

	qps := float64(*conns*perConn) / elapsed.Seconds()
	fmt.Printf("servebench: %d responses in %s — %.0f queries/s\n", total.responses, elapsed.Round(time.Millisecond), qps)
	fmt.Printf("servebench: errors %d, retries %d, reconnects %d, lost %d\n",
		total.errors, total.retries, total.reconnects, total.lost)
	if srv != nil {
		st := srv.Stats()
		hitRate := 0.0
		if st.WCTTMemoHits+st.WCTTMemoMisses > 0 {
			hitRate = 100 * float64(st.WCTTMemoHits) / float64(st.WCTTMemoHits+st.WCTTMemoMisses)
		}
		fmt.Printf("servebench: memo hit rate %.2f%% (%d hits, %d misses, %d coalesced)\n",
			hitRate, st.WCTTMemoHits, st.WCTTMemoMisses, st.Coalesced)
		fmt.Printf("servebench: per-line latency p50 <= %s, p99 <= %s\n",
			time.Duration(st.Latency.P50NS), time.Duration(st.Latency.P99NS))
	}
	if total.lost > 0 {
		fmt.Fprintf(os.Stderr, "servebench: FAIL — %d requests lost their response\n", total.lost)
		os.Exit(1)
	}
}

// newClient builds the resilient protocol client of the -tcp path.
func newClient(addr string, retries int, seed int64) *serve.Client {
	return serve.NewClient(serve.ClientConfig{
		Dial:           func() (net.Conn, error) { return net.Dial("tcp", addr) },
		RequestTimeout: 30 * time.Second,
		MaxRetries:     retries,
		BackoffBase:    5 * time.Millisecond,
		Seed:           seed,
	})
}

// allPairs enumerates every distinct (src, dst) flow of the mesh.
func allPairs(d mesh.Dim) [][2]mesh.Node {
	nodes := d.AllNodes()
	pairs := make([][2]mesh.Node, 0, len(nodes)*(len(nodes)-1))
	for _, s := range nodes {
		for _, t := range nodes {
			if s != t {
				pairs = append(pairs, [2]mesh.Node{s, t})
			}
		}
	}
	return pairs
}

// buildBatches renders `queries` WCTT tuples (cycling through pairs, offset
// so connections disagree about order) into batch-verb requests.
func buildBatches(pairs [][2]mesh.Node, design string, d mesh.Dim, queries, batch, offset int) []*serve.Request {
	var reqs []*serve.Request
	id := int64(1)
	for q := 0; q < queries; {
		n := min(batch, queries-q)
		var tuples bytes.Buffer
		tuples.WriteByte('[')
		for i := 0; i < n; i++ {
			p := pairs[(offset+q+i)%len(pairs)]
			if i > 0 {
				tuples.WriteByte(',')
			}
			fmt.Fprintf(&tuples, "[%d,%d,%d,%d]", p[0].X, p[0].Y, p[1].X, p[1].Y)
		}
		tuples.WriteByte(']')
		reqs = append(reqs, &serve.Request{
			ID: id, Op: "batch", Design: design,
			Width: d.Width, Height: d.Height,
			Queries: json.RawMessage(tuples.Bytes()),
		})
		q += n
		id++
	}
	return reqs
}

// renderLines marshals requests into a newline-delimited protocol stream.
func renderLines(reqs []*serve.Request) []byte {
	var buf bytes.Buffer
	for _, req := range reqs {
		line, err := json.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// countWriter counts response lines (and ok:false rejections among them)
// without retaining them.
type countWriter struct {
	lines  int
	failed int
	tail   []byte
}

func (c *countWriter) Write(p []byte) (int, error) {
	data := p
	if len(c.tail) > 0 {
		data = append(c.tail, p...)
	}
	for {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break
		}
		c.lines++
		if bytes.Contains(data[:nl], []byte(`"ok":false`)) {
			c.failed++
		}
		data = data[nl+1:]
	}
	c.tail = append(c.tail[:0], data...)
	return len(p), nil
}
