// Quickstart: build both NoC designs studied in the paper (the regular
// wormhole mesh and the proposed WaW+WaP mesh), push a small burst of
// memory-style traffic through them with the cycle-accurate simulator, and
// compare the analytical worst-case traversal time bounds of a near and a
// far flow.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/mesh"
)

func main() {
	const width, height = 4, 4
	memory := mesh.Node{X: 0, Y: 0}

	fmt.Printf("Quickstart: %dx%d wormhole mesh, memory controller at %v\n\n", width, height, memory)

	// 1. Cycle-accurate simulation: every node sends one cache-line
	//    eviction towards the memory node, on both designs.
	for _, design := range []core.Design{core.DesignRegular, core.DesignWaWWaP} {
		noc, err := core.NewNoC(width, height, design)
		if err != nil {
			log.Fatal(err)
		}
		sent := 0
		for _, src := range noc.Config().Dim.AllNodes() {
			if src == memory {
				continue
			}
			msg := &flit.Message{
				Flow:        flit.FlowID{Src: src, Dst: memory},
				Class:       flit.ClassEviction,
				PayloadBits: 512, // a 64-byte cache line
			}
			if _, err := noc.Send(msg); err != nil {
				log.Fatal(err)
			}
			sent++
		}
		if !noc.RunUntilDrained(100_000) {
			log.Fatalf("%v: network did not drain", design)
		}
		agg := noc.AggregateLatency()
		fmt.Printf("%-8s delivered %2d/%2d messages in %4d cycles  (latency min=%.0f mean=%.1f max=%.0f)\n",
			design, noc.TotalDeliveredMessages(), sent, noc.Cycle(), agg.Min(), agg.Mean(), agg.Max())
	}

	// 2. Analytical worst-case traversal time bounds for a near and a far
	//    flow, one-flit packets (the Table II configuration).
	model, err := core.NewWCTTModel(width, height)
	if err != nil {
		log.Fatal(err)
	}
	near := mesh.Node{X: 1, Y: 0}
	far := mesh.Node{X: width - 1, Y: height - 1}
	fmt.Println("\nWorst-case traversal time bounds (1-flit packets):")
	for _, flow := range []struct {
		name string
		src  mesh.Node
	}{{"near core " + near.String(), near}, {"far core  " + far.String(), far}} {
		reg, err := model.FlowWCTTOneFlit(core.DesignRegular, flow.src, memory)
		if err != nil {
			log.Fatal(err)
		}
		waw, err := model.FlowWCTTOneFlit(core.DesignWaWWaP, flow.src, memory)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> %v:  regular %6d cycles   WaW+WaP %4d cycles\n", flow.name, memory, reg, waw)
	}
	fmt.Println("\nThe regular mesh wins for the adjacent core but collapses for the far core;")
	fmt.Println("WaW+WaP keeps every core's bound in the same, scalable range.")
}
