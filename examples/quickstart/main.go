// Quickstart: declare both NoC designs studied in the paper (the regular
// wormhole mesh and the proposed WaW+WaP mesh) as scenario specs, push a
// burst of memory-style traffic through them on the parallel sweep engine,
// and compare the analytical worst-case traversal time bounds of a near and
// a far flow.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/network"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/traffic"
)

func main() {
	const width, height = 4, 4
	memory := mesh.Node{X: 0, Y: 0}

	fmt.Printf("Quickstart: %dx%d wormhole mesh, memory controller at %v\n\n", width, height, memory)

	// 1. Cycle-accurate simulation: a burst of cache-line evictions
	//    converging on the memory node, declared once and executed on
	//    both designs concurrently by the sweep engine.
	results, err := sweep.Expand(context.Background(), scenario.Spec{
		Name:   "quickstart",
		Mode:   scenario.ModeSimulate,
		Width:  width,
		Height: height,
		Seed:   1,
		Traffic: scenario.Traffic{
			Pattern:     "hotspot",
			Rate:        100, // every node offers traffic each cycle
			Messages:    width*height - 1,
			PayloadBits: traffic.CacheLinePayloadBits,
			Target:      memory,
		},
		Designs: []network.Design{network.DesignRegular, network.DesignWaWWaP},
	}, sweep.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-8s delivered %2d/%2d messages in %4d cycles  (latency min=%.0f mean=%.1f max=%.0f)\n",
			r.Design, r.Sim.Delivered, r.Sim.Injected, r.Sim.Cycles,
			r.Sim.MinLatency, r.Sim.MeanLatency, r.Sim.MaxLatency)
	}

	// 2. Analytical worst-case traversal time bounds for a near and a far
	//    flow, one-flit packets (the Table II configuration).
	model, err := core.NewWCTTModel(width, height)
	if err != nil {
		log.Fatal(err)
	}
	near := mesh.Node{X: 1, Y: 0}
	far := mesh.Node{X: width - 1, Y: height - 1}
	fmt.Println("\nWorst-case traversal time bounds (1-flit packets):")
	for _, flow := range []struct {
		name string
		src  mesh.Node
	}{{"near core " + near.String(), near}, {"far core  " + far.String(), far}} {
		reg, err := model.FlowWCTTOneFlit(core.DesignRegular, flow.src, memory)
		if err != nil {
			log.Fatal(err)
		}
		waw, err := model.FlowWCTTOneFlit(core.DesignWaWWaP, flow.src, memory)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> %v:  regular %6d cycles   WaW+WaP %4d cycles\n", flow.name, memory, reg, waw)
	}
	fmt.Println("\nThe regular mesh wins for the adjacent core but collapses for the far core;")
	fmt.Println("WaW+WaP keeps every core's bound in the same, scalable range.")
}
