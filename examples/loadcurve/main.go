// Loadcurve: run the classical NoC saturation study on the cycle-accurate
// simulator — sweep sustained uniform-random injection rates through a 4x4
// mesh for both headline designs and print the latency/throughput curve of
// each. The active-set simulator engine makes the low-load points nearly
// free: a Step only visits routers with traffic or replenishing WaW
// counters, so idle cycles cost almost nothing.
//
// Run with:
//
//	go run ./examples/loadcurve
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/network"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func main() {
	const width, height = 4, 4
	fmt.Printf("Load curve: %dx%d wormhole mesh, sustained uniform-random traffic\n", width, height)

	results, err := sweep.Expand(context.Background(), scenario.Spec{
		Name:   "loadcurve",
		Mode:   scenario.ModeLoadCurve,
		Width:  width,
		Height: height,
		Seed:   1,
		Traffic: scenario.Traffic{
			Rates:         []int{25, 50, 100, 200, 400, 700},
			WarmupCycles:  1_000,
			MeasureCycles: 5_000,
		},
		Designs: []network.Design{network.DesignRegular, network.DesignWaWWaP},
	}, sweep.Options{})
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range results {
		fmt.Printf("\n%s (%d-cycle measurement window per point)\n", r.Design, r.LoadCurve.MeasureCycles)
		fmt.Println("  rate  throughput  mean lat  max lat  mean net lat  drained")
		for _, p := range r.LoadCurve.Points {
			fmt.Printf("  %4d  %10.1f  %8.1f  %7.0f  %12.1f  %v\n",
				p.RatePerMil, p.Throughput, p.MeanLatency, p.MaxLatency, p.MeanNetworkLatency, p.Drained)
		}
	}
	fmt.Println("\nThroughput tracks the offered rate until the mesh saturates; past the knee")
	fmt.Println("the latency climbs and the gap between total and network latency is the")
	fmt.Println("time messages wait in the source NIC queue before their first flit injects.")
}
