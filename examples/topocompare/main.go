// topocompare runs the same cycle-accurate experiment on all three
// topologies of the pluggable topology layer — the paper's 2D mesh, the
// torus and the 4-cores-per-router concentrated mesh — and tabulates what
// the geometry buys: under uniform random traffic the torus's wrap links
// halve the average hop count and the concentrated mesh trades link
// bandwidth for router count, while under an all-to-one hotspot the
// topology barely matters because the bottleneck is the ejection port.
//
// Per endpoint grid (8x8 and 16x16, always counted in cores) and pattern
// the table reports the drain time, the delivered messages and the mean
// and maximum message latency. Every run uses the identical generator
// seed and workload, so the latency columns are directly comparable.
//
// Run with:
//
//	go run ./examples/topocompare
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/mesh"
	"repro/internal/network"
	"repro/internal/tablegen"
	"repro/internal/traffic"
)

// run drives the pattern through a fresh network of the given topology
// until drained and returns the network for inspection.
func run(spec mesh.TopoSpec, d mesh.Dim, pattern string) *network.Network {
	cfg := network.DefaultConfig(d, network.DesignWaWWaP)
	cfg.Topo = spec
	net := network.MustNew(cfg)
	var gen traffic.Generator
	var err error
	switch pattern {
	case "uniform":
		gen, err = traffic.NewUniformRandom(d, 7, 25, traffic.CacheLinePayloadBits, 40*d.Nodes())
	case "hotspot":
		gen, err = traffic.NewHotspot(d, mesh.Node{X: 0, Y: 0}, 7, 30, traffic.RequestPayloadBits, 600)
	default:
		log.Fatalf("unknown pattern %q", pattern)
	}
	if err != nil {
		log.Fatal(err)
	}
	if _, done := traffic.Drive(net, gen, 50_000_000); !done {
		log.Fatalf("%v %v %s did not drain", spec, d, pattern)
	}
	return net
}

func main() {
	topos := []mesh.TopoSpec{
		{Kind: mesh.TopoMesh},
		{Kind: mesh.TopoTorus},
		{Kind: mesh.TopoCMesh, Conc: 4},
	}
	for _, pattern := range []string{"uniform", "hotspot"} {
		t := tablegen.New(fmt.Sprintf("Topology comparison — WaW+WaP, %s traffic, identical seed and workload", pattern),
			"cores", "topology", "routers", "cycles", "delivered", "mean lat", "max lat")
		for _, size := range []int{8, 16} {
			d := mesh.MustDim(size, size)
			for _, spec := range topos {
				net := run(spec, d, pattern)
				lat := net.AggregateLatency()
				t.AddRow(fmt.Sprintf("%d", d.Nodes()), spec.String(),
					net.Topology().RouterDim().String(),
					fmt.Sprintf("%d", net.Cycle()),
					fmt.Sprintf("%d", net.TotalDeliveredMessages()),
					fmt.Sprintf("%.1f", lat.Mean()),
					fmt.Sprintf("%.0f", lat.Max()))
			}
		}
		if err := t.Render(os.Stdout, tablegen.FormatText); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
