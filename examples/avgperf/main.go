// avgperf reproduces the average-performance result of Section IV: the same
// multiprogrammed workload (an EEMBC kernel on every core of the mesh,
// scaled down so the cycle-accurate simulation stays fast) is run on the
// regular design and on WaW+WaP, and the makespans are compared. The paper
// reports a degradation below 1%; the exact figure here depends on how much
// the scaled workload stresses the NoC, but it stays within a few percent
// because the memory controller — not the NoC — is the shared bottleneck.
//
// The two design runs are a single scenario spec with a Designs sweep axis;
// the sweep engine executes them concurrently.
//
// Run with:
//
//	go run ./examples/avgperf [-width 8 -height 8 -benchmark matrix -scale 200]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/network"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func main() {
	width := flag.Int("width", 8, "mesh width")
	height := flag.Int("height", 8, "mesh height")
	benchmark := flag.String("benchmark", "matrix", "EEMBC kernel to run on every core")
	scale := flag.Int("scale", 200, "instruction-count scale-down factor")
	maxCycles := flag.Int("max-cycles", 50_000_000, "cycle budget per design")
	flag.Parse()

	fmt.Printf("Running %q on every core of a %dx%d mesh (scale 1/%d) on both designs...\n",
		*benchmark, *width, *height, *scale)
	results, err := sweep.Expand(context.Background(), scenario.Spec{
		Name:      "avgperf",
		Mode:      scenario.ModeManycore,
		Width:     *width,
		Height:    *height,
		Workload:  *benchmark,
		Scale:     *scale,
		MaxCycles: *maxCycles,
		Designs:   []network.Design{network.DesignRegular, network.DesignWaWWaP},
	}, sweep.Options{})
	if err != nil {
		log.Fatal(err)
	}
	regular, waw := results[0].Manycore, results[1].Manycore
	degradation := (float64(waw.MakespanCycles)/float64(regular.MakespanCycles) - 1) * 100
	fmt.Printf("\n  cores simulated:        %d\n", regular.Cores)
	fmt.Printf("  memory transactions:    %d\n", waw.MemTransactions)
	fmt.Printf("  regular wNoC makespan:  %d cycles\n", regular.MakespanCycles)
	fmt.Printf("  WaW+WaP makespan:       %d cycles\n", waw.MakespanCycles)
	fmt.Printf("  average degradation:    %.2f%%\n", degradation)
	fmt.Println("\nThe paper reports less than 1% degradation for both single-threaded and parallel applications.")
}
