// avgperf reproduces the average-performance result of Section IV: the same
// multiprogrammed workload (an EEMBC kernel on every core of the mesh,
// scaled down so the cycle-accurate simulation stays fast) is run on the
// regular design and on WaW+WaP, and the makespans are compared. The paper
// reports a degradation below 1%; the exact figure here depends on how much
// the scaled workload stresses the NoC, but it stays within a few percent
// because the memory controller — not the NoC — is the shared bottleneck.
//
// Run with:
//
//	go run ./examples/avgperf [-width 8 -height 8 -benchmark matrix -scale 200]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	width := flag.Int("width", 8, "mesh width")
	height := flag.Int("height", 8, "mesh height")
	benchmark := flag.String("benchmark", "matrix", "EEMBC kernel to run on every core")
	scale := flag.Int("scale", 200, "instruction-count scale-down factor")
	maxCycles := flag.Int("max-cycles", 50_000_000, "cycle budget per design")
	flag.Parse()

	fmt.Printf("Running %q on every core of a %dx%d mesh (scale 1/%d) on both designs...\n",
		*benchmark, *width, *height, *scale)
	res, err := core.AveragePerformance(*width, *height, *benchmark, *scale, *maxCycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  cores simulated:        %d\n", res.CoresSimulated)
	fmt.Printf("  memory transactions:    %d\n", res.MemTransactions)
	fmt.Printf("  regular wNoC makespan:  %d cycles\n", res.RegularCycles)
	fmt.Printf("  WaW+WaP makespan:       %d cycles\n", res.WaWWaPCycles)
	fmt.Printf("  average degradation:    %.2f%%\n", res.DegradationPct)
	fmt.Println("\nThe paper reports less than 1% degradation for both single-threaded and parallel applications.")
}
