// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, plus simulator-throughput and ablation benchmarks. Each benchmark
// recomputes the corresponding experiment and reports its headline numbers
// as custom metrics so `go test -bench=. -benchmem` doubles as a
// reproduction run. EXPERIMENTS.md records the measured values next to the
// paper's.
package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/mesh"
	"repro/internal/network"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sweep"
	"repro/internal/traffic"
	"repro/internal/wcet"
	"repro/internal/workload"
)

// TestMain doubles the test binary as a sweep worker, so the multi-process
// benchmarks below can spawn real subprocesses: the coordinator re-execs
// os.Args[0] with NOCTOOL_SWEEP_WORKER set, and the role is recognised here
// before any test runs.
func TestMain(m *testing.M) {
	if os.Getenv("NOCTOOL_SWEEP_WORKER") == "1" {
		if err := sweep.ServeWorker(context.Background(), os.Stdin, os.Stdout, sweep.WorkerHooks{}); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// BenchmarkTableI_Weights regenerates Table I: the WaW arbitration weights of
// router R(1,1) of a 2x2 mesh.
func BenchmarkTableI_Weights(b *testing.B) {
	var entries int
	for i := 0; i < b.N; i++ {
		rows, err := core.TableI(2, 2, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		entries = len(rows)
	}
	b.ReportMetric(float64(entries), "weight-pairs")
}

// BenchmarkTableII_WCTTScaling regenerates Table II: the WCTT summary of
// every mesh size from 2x2 to 8x8 for both designs.
func BenchmarkTableII_WCTTScaling(b *testing.B) {
	var last []float64
	for i := 0; i < b.N; i++ {
		rows, err := core.TableII(core.PaperTableIISizes())
		if err != nil {
			b.Fatal(err)
		}
		final := rows[len(rows)-1]
		last = []float64{float64(final.Regular.Max), float64(final.WaWWaP.Max)}
	}
	b.ReportMetric(last[0], "regular-8x8-max-cycles")
	b.ReportMetric(last[1], "wawwap-8x8-max-cycles")
	b.ReportMetric(last[0]/last[1], "max-wctt-improvement")
}

// BenchmarkTableIII_EEMBC regenerates Table III: the per-core normalised
// WCET map of the EEMBC Automotive suite on the 64-core platform.
func BenchmarkTableIII_EEMBC(b *testing.B) {
	var far, near float64
	for i := 0; i < b.N; i++ {
		table, err := core.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		near = table[0][1]
		far = table[7][7]
	}
	b.ReportMetric(near, "normalized-wcet-near-core")
	b.ReportMetric(far, "normalized-wcet-far-core")
}

// BenchmarkFigure2a_PacketSizes regenerates Figure 2(a): the 3DPP WCET under
// placement P0 for maximum packet sizes L1, L4 and L8.
func BenchmarkFigure2a_PacketSizes(b *testing.B) {
	var impL1, impL8 float64
	for i := 0; i < b.N; i++ {
		points, err := core.Figure2a()
		if err != nil {
			b.Fatal(err)
		}
		impL1 = points[0].Improvement()
		impL8 = points[len(points)-1].Improvement()
	}
	b.ReportMetric(impL1, "improvement-L1")
	b.ReportMetric(impL8, "improvement-L8")
}

// BenchmarkFigure2b_Placements regenerates Figure 2(b): the 3DPP WCET across
// placements P0-P3 with one-flit packets.
func BenchmarkFigure2b_Placements(b *testing.B) {
	var regVar, wawVar float64
	for i := 0; i < b.N; i++ {
		points, err := core.Figure2b()
		if err != nil {
			b.Fatal(err)
		}
		var regs, waws []float64
		for _, p := range points {
			regs = append(regs, p.RegularMs)
			waws = append(waws, p.WaWWaPMs)
		}
		regVar = wcet.Variability(regs)
		wawVar = wcet.Variability(waws)
	}
	b.ReportMetric(regVar, "regular-placement-variability")
	b.ReportMetric(wawVar, "wawwap-placement-variability")
}

// BenchmarkAvgPerf_Manycore reproduces the average-performance comparison of
// Section IV on a scaled-down workload: the same EEMBC kernel on every core
// of a 4x4 mesh, cycle-accurately simulated on both designs.
func BenchmarkAvgPerf_Manycore(b *testing.B) {
	var degradation float64
	for i := 0; i < b.N; i++ {
		res, err := core.AveragePerformance(4, 4, "matrix", 500, 20_000_000)
		if err != nil {
			b.Fatal(err)
		}
		degradation = res.DegradationPct
	}
	b.ReportMetric(degradation, "avg-degradation-%")
}

// BenchmarkArea_Overhead reproduces the NoC area estimate: the WaW+WaP
// additions must stay below the paper's 5% envelope.
func BenchmarkArea_Overhead(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		cmp, err := core.AreaOverhead(8, 8)
		if err != nil {
			b.Fatal(err)
		}
		overhead = cmp.OverheadPercent()
	}
	b.ReportMetric(overhead, "area-overhead-%")
}

// benchmarkHotspot drives a congested all-to-one pattern through the
// cycle-accurate simulator and reports the latency spread, the measured
// counterpart of the analytical Table II study.
func benchmarkHotspot(b *testing.B, design network.Design) {
	d := mesh.MustDim(8, 8)
	target := mesh.Node{X: 0, Y: 0}
	var maxLatency float64
	for i := 0; i < b.N; i++ {
		net, err := network.New(network.DefaultConfig(d, design))
		if err != nil {
			b.Fatal(err)
		}
		gen, err := traffic.NewHotspot(d, target, 7, 40, traffic.RequestPayloadBits, 1500)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := traffic.Drive(net, gen, 2_000_000); !done {
			b.Fatal("hotspot simulation did not complete")
		}
		maxLatency = net.AggregateLatency().Max()
	}
	b.ReportMetric(maxLatency, "max-latency-cycles")
}

// BenchmarkSimWCTT_Hotspot_Regular measures the regular design under a
// saturating hotspot.
func BenchmarkSimWCTT_Hotspot_Regular(b *testing.B) { benchmarkHotspot(b, network.DesignRegular) }

// BenchmarkSimWCTT_Hotspot_WaWWaP measures the WaW+WaP design under the same
// hotspot.
func BenchmarkSimWCTT_Hotspot_WaWWaP(b *testing.B) { benchmarkHotspot(b, network.DesignWaWWaP) }

// BenchmarkSimulatorThroughput measures the raw speed of the cycle-accurate
// simulator (simulated cycles per second of an idle-ish 8x8 mesh with
// background uniform traffic), the metric that matters when scaling the
// average-performance experiments up.
func BenchmarkSimulatorThroughput(b *testing.B) {
	d := mesh.MustDim(8, 8)
	net := network.MustNew(network.DefaultConfig(d, network.DesignWaWWaP))
	gen, err := traffic.NewUniformRandom(d, 3, 50, 512, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, msg := range gen.Tick(net.Cycle()) {
			if _, err := net.Send(msg); err != nil {
				b.Fatal(err)
			}
		}
		net.Step()
	}
	b.ReportMetric(float64(net.TotalInjectedFlits())/float64(b.N), "flits/cycle")
}

// BenchmarkAblation_WCTT compares the two mechanisms in isolation (WaW-only
// and WaP-only) against the full design for the farthest flow of the 8x8
// mesh — the design-choice ablation called out in DESIGN.md.
func BenchmarkAblation_WCTT(b *testing.B) {
	model, err := core.NewWCTTModel(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	src := mesh.Node{X: 7, Y: 7}
	dst := mesh.Node{X: 0, Y: 0}
	results := make(map[string]float64)
	for i := 0; i < b.N; i++ {
		for _, design := range []core.Design{core.DesignRegular, core.DesignWaPOnly, core.DesignWaWOnly, core.DesignWaWWaP} {
			v, err := model.MessageWCTT(design, src, dst, 512)
			if err != nil {
				b.Fatal(err)
			}
			results[design.String()] = float64(v)
		}
	}
	b.ReportMetric(results["regular"], "regular-cycles")
	b.ReportMetric(results["WaP-only"], "wap-only-cycles")
	b.ReportMetric(results["WaW-only"], "waw-only-cycles")
	b.ReportMetric(results["WaW+WaP"], "wawwap-cycles")
}

// benchmarkSweepGrid runs the Table II scenario grid (sizes 2x2..8x8
// crossed with the regular and WaW+WaP designs) through the sweep engine
// with the given worker count. The serial/parallel pair tracks the
// wall-clock win of the parallel experiment layer in the benchmark
// trajectory.
func benchmarkSweepGrid(b *testing.B, jobs int) {
	spec := scenario.Spec{
		Name:    "bench",
		Mode:    scenario.ModeWCTT,
		Sizes:   []int{2, 3, 4, 5, 6, 7, 8},
		Designs: []network.Design{network.DesignRegular, network.DesignWaWWaP},
	}
	var scenarios int
	var maxWCTT float64
	for i := 0; i < b.N; i++ {
		results, err := sweep.Expand(context.Background(), spec, sweep.Options{Jobs: jobs})
		if err != nil {
			b.Fatal(err)
		}
		scenarios = len(results)
		maxWCTT = float64(results[len(results)-2].WCTT.MaxCycles)
	}
	b.ReportMetric(float64(scenarios), "scenarios")
	b.ReportMetric(maxWCTT, "regular-8x8-max-cycles")
}

// BenchmarkSweep is the sweep-engine benchmark family tracked across PRs
// (see BENCH_baseline.json and the CI bench smoke step).
func BenchmarkSweep(b *testing.B) {
	// serial runs the Table II grid on one worker; parallel on GOMAXPROCS
	// workers — their ns/op ratio is the experiment layer's speedup.
	b.Run("serial", func(b *testing.B) { benchmarkSweepGrid(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchmarkSweepGrid(b, 0) })

	// simulate drives the cycle-accurate simulator at low injection load on
	// an 8x8 mesh (plus smaller meshes and a congested hotspot grid) — the
	// profile the active-set engine accelerates: most nodes idle most
	// cycles.
	b.Run("simulate", func(b *testing.B) {
		spec := scenario.Spec{
			Name:    "bench-sim",
			Mode:    scenario.ModeSimulate,
			Sizes:   []int{4, 8},
			Designs: []network.Design{network.DesignRegular, network.DesignWaWWaP},
			Seed:    7,
			Traffic: scenario.Traffic{Pattern: "uniform", Rate: 5, Messages: 2000},
		}
		var delivered uint64
		for i := 0; i < b.N; i++ {
			results, err := sweep.Expand(context.Background(), spec, sweep.Options{})
			if err != nil {
				b.Fatal(err)
			}
			delivered = 0
			for _, r := range results {
				delivered += r.Sim.Delivered
			}
		}
		b.ReportMetric(float64(delivered), "messages-delivered")
	})

	// hotspot-simulate keeps the original congested small-mesh grid so the
	// saturated-network profile stays tracked too.
	b.Run("hotspot-simulate", func(b *testing.B) {
		spec := scenario.Spec{
			Name:    "bench-hot",
			Mode:    scenario.ModeSimulate,
			Sizes:   []int{2, 3, 4, 5, 6},
			Designs: []network.Design{network.DesignRegular, network.DesignWaWWaP},
			Seed:    7,
			Traffic: scenario.Traffic{Pattern: "hotspot", Rate: 40, Messages: 500},
		}
		var delivered uint64
		for i := 0; i < b.N; i++ {
			results, err := sweep.Expand(context.Background(), spec, sweep.Options{})
			if err != nil {
				b.Fatal(err)
			}
			delivered = 0
			for _, r := range results {
				delivered += r.Sim.Delivered
			}
		}
		b.ReportMetric(float64(delivered), "messages-delivered")
	})

	// load-curve exercises the saturation-study mode across both designs.
	b.Run("load-curve", func(b *testing.B) {
		spec := scenario.Spec{
			Name:    "bench-lc",
			Mode:    scenario.ModeLoadCurve,
			Sizes:   []int{4},
			Designs: []network.Design{network.DesignRegular, network.DesignWaWWaP},
			Seed:    3,
			Traffic: scenario.Traffic{
				Rates:         []int{50, 200, 500},
				WarmupCycles:  500,
				MeasureCycles: 2500,
			},
		}
		var points int
		for i := 0; i < b.N; i++ {
			results, err := sweep.Expand(context.Background(), spec, sweep.Options{})
			if err != nil {
				b.Fatal(err)
			}
			points = 0
			for _, r := range results {
				points += len(r.LoadCurve.Points)
			}
		}
		b.ReportMetric(float64(points), "curve-points")
	})

	// in-process vs multi-process on one identical cycle-accurate grid: the
	// ratio prices the coordinator's wire overhead (spec/result JSON, the
	// per-task round trip) and, on a multi-core host, measures the
	// -worker-procs scaling. The recording container is 1-CPU, so the
	// baseline's multiproc numbers track overhead only; the CI multi-core
	// step records the real parallel ratio.
	mpGrid := scenario.Spec{
		Name:    "bench-mp",
		Mode:    scenario.ModeSimulate,
		Sizes:   []int{3, 4, 5},
		Designs: []network.Design{network.DesignRegular, network.DesignWaWWaP},
		Seed:    9,
		Traffic: scenario.Traffic{Pattern: "uniform", Rate: 40, Messages: 400},
	}
	mpSpecs, err := mpGrid.Expand()
	if err != nil {
		b.Fatal(err)
	}
	runExec := func(b *testing.B, exec sweep.Executor) {
		var delivered uint64
		for i := 0; i < b.N; i++ {
			c := sweep.NewCollector(len(mpSpecs))
			if err := sweep.Stream(context.Background(), sweep.Tasks(mpSpecs), sweep.Options{}, exec, c); err != nil {
				b.Fatal(err)
			}
			if err := c.Err(); err != nil {
				b.Fatal(err)
			}
			delivered = 0
			for _, r := range c.Results() {
				delivered += r.Sim.Delivered
			}
		}
		b.ReportMetric(float64(delivered), "messages-delivered")
	}
	b.Run("multiproc-inprocess", func(b *testing.B) { runExec(b, sweep.InProcess{}) })
	for _, procs := range []int{1, 2} {
		b.Run(fmt.Sprintf("multiproc-%dworkers", procs), func(b *testing.B) {
			runExec(b, &sweep.Coordinator{
				Command: []string{os.Args[0]},
				Env:     append(os.Environ(), "NOCTOOL_SWEEP_WORKER=1"),
				Procs:   procs,
			})
		})
	}
}

// BenchmarkEngine compares the active-set engine against the full-scan
// reference on an 8x8 mesh under low uniform-random load — the ns/op ratio
// is the scheduling win on the workload where most nodes idle most cycles.
// The time-leap sub-benchmark measures the event-horizon scheduling on the
// workload it targets: bursts separated by long idle windows plus an idle
// tail, where the leaping engine's cost is O(events) instead of O(cycles).
func BenchmarkEngine(b *testing.B) {
	for _, e := range []network.Engine{network.EngineActiveSet, network.EngineFullScan} {
		b.Run(e.String(), func(b *testing.B) {
			d := mesh.MustDim(8, 8)
			cfg := network.DefaultConfig(d, network.DesignWaWWaP)
			cfg.Engine = e
			net := network.MustNew(cfg)
			gen, err := traffic.NewUniformRandom(d, 3, 5, traffic.RequestPayloadBits, 1<<30)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, msg := range gen.Tick(net.Cycle()) {
					if _, err := net.Send(msg); err != nil {
						b.Fatal(err)
					}
				}
				net.Step()
			}
			b.ReportMetric(float64(net.TotalInjectedFlits())/float64(b.N), "flits/cycle")
		})
	}

	// sharded vs sharded-serial: the identical sustained uniform-random
	// workload on a 16x16 mesh — large enough that a cycle carries real
	// work in every row stripe — stepped by the serial active-set engine
	// and by one shard per CPU. The ns/op ratio is the two-phase barrier
	// engine's speedup on a single cycle-accurate run (≈1x on one core,
	// where the stripes timeshare; the results are byte-identical either
	// way, pinned by the sharded-equivalence tests).
	shardedWorkload := func(b *testing.B, shards int) {
		d := mesh.MustDim(16, 16)
		cfg := network.DefaultConfig(d, network.DesignWaWWaP)
		cfg.Shards = shards
		net := network.MustNew(cfg)
		// Rate 8 msgs/node/kcycle keeps the 16x16 mesh well below uniform
		// saturation: the workload reaches a steady state (0 allocs/op)
		// with every row stripe still carrying traffic every cycle.
		gen, err := traffic.NewUniformRandom(d, 3, 8, traffic.CacheLinePayloadBits, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, msg := range gen.Tick(net.Cycle()) {
				if _, err := net.Send(msg); err != nil {
					b.Fatal(err)
				}
			}
			net.Step()
		}
		b.ReportMetric(float64(net.TotalInjectedFlits())/float64(b.N), "flits/cycle")
		b.ReportMetric(float64(net.Shards()), "shards")
	}
	b.Run("sharded-serial", func(b *testing.B) { shardedWorkload(b, 1) })
	b.Run("sharded", func(b *testing.B) { shardedWorkload(b, runtime.GOMAXPROCS(0)) })

	// time-leap: ten all-node permutation bursts 10k cycles apart (the
	// network drains in a few hundred cycles, then idles), followed by a
	// 100k-cycle idle tail — one op simulates ~200k cycles, almost all of
	// them leapt over. The -stepped twin runs the identical workload with a
	// plain cycle-by-cycle loop; the ns/op ratio is the leap win.
	leapWorkload := func(b *testing.B, net *network.Network, leap bool) uint64 {
		gen, err := traffic.NewPermutation(mesh.MustDim(8, 8), traffic.Transpose, traffic.CacheLinePayloadBits, 10, 10_000)
		if err != nil {
			b.Fatal(err)
		}
		if leap {
			if _, done := traffic.Drive(net, gen, 1_000_000); !done {
				b.Fatal("pattern did not drain")
			}
		} else {
			for {
				for _, msg := range gen.Tick(net.Cycle()) {
					if _, err := net.Send(msg); err != nil {
						b.Fatal(err)
					}
				}
				if gen.Done() && net.Drained() {
					break
				}
				net.Step()
			}
		}
		idle := 100_000 + 10_000*10 - int(net.Cycle()) // same final cycle either way
		if leap {
			net.Run(idle)
		} else {
			for i := 0; i < idle; i++ {
				net.Step()
			}
		}
		return net.Cycle()
	}
	for _, leap := range []bool{true, false} {
		name := "time-leap"
		if !leap {
			name = "time-leap-stepped"
		}
		b.Run(name, func(b *testing.B) {
			net := network.MustNew(network.DefaultConfig(mesh.MustDim(8, 8), network.DesignWaWWaP))
			var cycles uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Reset()
				cycles = leapWorkload(b, net, leap)
			}
			b.ReportMetric(float64(cycles), "cycles-simulated/op")
		})
	}
}

// BenchmarkWCTT tracks the analytical WCET table generation; tableiii is the
// per-core × per-benchmark loop that now runs on the sweep worker pool. The
// wcetmap-64x64 pair measures the per-core UBD precomputation of a 64x64
// wcet-map sweep point from a cold model — the kernel sub-bench runs the two
// AllCoresRoundTripUBD row sweeps, the pairwise twin the retained per-core
// RoundTripUBD loop — and their ratio is a perf-gate input (cmd/benchgate).
func BenchmarkWCTT(b *testing.B) {
	b.Run("tableiii", func(b *testing.B) {
		p := wcet.DefaultPlatform()
		suite := workload.EEMBCAutomotive()
		var far float64
		for i := 0; i < b.N; i++ {
			table, err := p.TableIII(suite)
			if err != nil {
				b.Fatal(err)
			}
			far = table[7][7]
		}
		b.ReportMetric(far, "normalized-wcet-far-core")
	})
	wcetmapDim := mesh.MustDim(64, 64)
	memory := mesh.Node{X: 0, Y: 0}
	b.Run("wcetmap-64x64-kernel", func(b *testing.B) {
		var sink uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := analysis.MustNewModel(analysis.DefaultParams(wcetmapDim))
			load, err := m.AllCoresRoundTripUBD(network.DesignWaWWaP, memory, 48, 512, nil)
			if err != nil {
				b.Fatal(err)
			}
			evict, err := m.AllCoresRoundTripUBD(network.DesignWaWWaP, memory, 512, 16, nil)
			if err != nil {
				b.Fatal(err)
			}
			sink = load[len(load)-1] + evict[len(evict)-1]
		}
		b.ReportMetric(float64(sink), "far-core-ubd-cycles")
	})
	b.Run("wcetmap-64x64-pairwise", func(b *testing.B) {
		var sink uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := analysis.MustNewModel(analysis.DefaultParams(wcetmapDim))
			for _, core := range wcetmapDim.AllNodes() {
				load, err := m.RoundTripUBD(network.DesignWaWWaP, core, memory, 48, 512)
				if err != nil {
					b.Fatal(err)
				}
				evict, err := m.RoundTripUBD(network.DesignWaWWaP, core, memory, 512, 16)
				if err != nil {
					b.Fatal(err)
				}
				sink = load + evict
			}
		}
		b.ReportMetric(float64(sink), "far-core-ubd-cycles")
	})
}

// BenchmarkAnalysis tracks the analytical WCTT engine itself (no sweep
// machinery): the serial Table II study over the paper's sizes, plus the
// large-mesh points (16x16 and 32x32) that the flat-indexed fast path opens
// up — Table II is precisely a mesh-size scalability study, so the bench
// family extends it beyond the paper's 8x8 ceiling.
func BenchmarkAnalysis(b *testing.B) {
	b.Run("tableii", func(b *testing.B) {
		var maxWCTT uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := analysis.TableII(core.PaperTableIISizes())
			if err != nil {
				b.Fatal(err)
			}
			maxWCTT = rows[len(rows)-1].Regular.Max
		}
		b.ReportMetric(float64(maxWCTT), "regular-8x8-max-cycles")
	})
	// tableii/NxN runs on the incremental all-pairs kernels; pairwise/NxN is
	// the retained per-pair reference summary on a prebuilt model. Their
	// ratio is the kernel speedup the CI perf gate (cmd/benchgate) enforces.
	for _, size := range []int{16, 32} {
		b.Run(fmt.Sprintf("tableii/%dx%d", size, size), func(b *testing.B) {
			var waw uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				row, err := analysis.RowForDim(mesh.MustDim(size, size))
				if err != nil {
					b.Fatal(err)
				}
				waw = row.WaWWaP.Max
			}
			b.ReportMetric(float64(waw), "wawwap-max-cycles")
		})
	}
	for _, size := range []int{16, 32} {
		b.Run(fmt.Sprintf("pairwise/%dx%d", size, size), func(b *testing.B) {
			m := analysis.MustNewModel(analysis.DefaultParams(mesh.MustDim(size, size)))
			var waw uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reg, err := m.PairwiseSummarizeOneFlitWCTT(network.DesignRegular)
				if err != nil {
					b.Fatal(err)
				}
				sum, err := m.PairwiseSummarizeOneFlitWCTT(network.DesignWaWWaP)
				if err != nil {
					b.Fatal(err)
				}
				waw = sum.Max + reg.Min
			}
			b.ReportMetric(float64(waw), "wawwap-max-cycles")
		})
	}
}

// BenchmarkPacketization measures the WaP slicing overhead accounting (the
// 25% flit overhead of a cache-line reply reported in Section IV).
func BenchmarkPacketization(b *testing.B) {
	link := flit.DefaultLinkConfig()
	var overhead float64
	for i := 0; i < b.N; i++ {
		overhead = link.WaPOverhead(512)
	}
	b.ReportMetric(overhead*100, "wap-flit-overhead-%")
}

// BenchmarkWorkloadModels exercises the synthetic workload constructors used
// by every WCET experiment.
func BenchmarkWorkloadModels(b *testing.B) {
	var kernels, exchanges int
	for i := 0; i < b.N; i++ {
		kernels = len(workload.EEMBCAutomotive())
		exchanges = workload.ThreeDPathPlanning().TotalMessagesPerThread()
	}
	b.ReportMetric(float64(kernels), "eembc-kernels")
	b.ReportMetric(float64(exchanges), "3dpp-exchanges-per-thread")
}

// buildServePairs enumerates every distinct (src, dst) flow of the mesh —
// the query working set of the serve benchmarks.
func buildServePairs(d mesh.Dim) [][2]mesh.Node {
	nodes := d.AllNodes()
	pairs := make([][2]mesh.Node, 0, len(nodes)*(len(nodes)-1))
	for _, s := range nodes {
		for _, t := range nodes {
			if s != t {
				pairs = append(pairs, [2]mesh.Node{s, t})
			}
		}
	}
	return pairs
}

// buildServeBatch renders `queries` WCTT tuples (cycling through pairs) as
// batch-verb protocol lines of at most 65536 tuples each.
func buildServeBatch(pairs [][2]mesh.Node, queries int) []byte {
	var buf bytes.Buffer
	const perLine = 65536
	for q := 0; q < queries; {
		n := min(perLine, queries-q)
		buf.WriteString(`{"id":1,"op":"batch","design":"waw+wap","width":8,"height":8,"queries":[`)
		for i := 0; i < n; i++ {
			p := pairs[(q+i)%len(pairs)]
			if i > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, "[%d,%d,%d,%d]", p[0].X, p[0].Y, p[1].X, p[1].Y)
		}
		buf.WriteString("]}\n")
		q += n
	}
	return buf.Bytes()
}

// BenchmarkServe measures the latency-oracle daemon end to end through
// ServeLines: protocol parse, memo probe, response encode. batch-warm is
// the headline number — vectorised warm-cache analytical queries, the
// million-QPS path of the serving layer; wctt-lines pays the full
// line-protocol overhead (one JSON object parse per query) as a contrast.
// Every op is one query, so ns/op is per-query cost and queries/s the
// throughput. The examples/servebench harness reports the same workload
// with concurrent connections.
func BenchmarkServe(b *testing.B) {
	pairs := buildServePairs(mesh.MustDim(8, 8))
	b.Run("batch-warm", func(b *testing.B) {
		srv := serve.New(0, 0)
		defer srv.Close()
		warm := buildServeBatch(pairs, len(pairs))
		if err := srv.ServeLines(context.Background(), bytes.NewReader(warm), io.Discard); err != nil {
			b.Fatal(err)
		}
		in := buildServeBatch(pairs, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		if err := srv.ServeLines(context.Background(), bytes.NewReader(in), io.Discard); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("batch-cold-memo", func(b *testing.B) {
		// Same workload against fresh singleflight-guarded computations on
		// the first lap: the warm/cold ratio is what the concurrent LRU and
		// memo sharing buy the serving layer.
		srv := serve.New(0, 0)
		defer srv.Close()
		in := buildServeBatch(pairs, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		if err := srv.ServeLines(context.Background(), bytes.NewReader(in), io.Discard); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("wctt-lines", func(b *testing.B) {
		srv := serve.New(0, 0)
		defer srv.Close()
		warm := buildServeBatch(pairs, len(pairs))
		if err := srv.ServeLines(context.Background(), bytes.NewReader(warm), io.Discard); err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			fmt.Fprintf(&buf, `{"id":%d,"op":"wctt","design":"waw+wap","width":8,"height":8,"src":{"x":%d,"y":%d},"dst":{"x":%d,"y":%d}}`+"\n",
				i+1, p[0].X, p[0].Y, p[1].X, p[1].Y)
		}
		b.ReportAllocs()
		b.ResetTimer()
		if err := srv.ServeLines(context.Background(), bytes.NewReader(buf.Bytes()), io.Discard); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("wcet-batch-warm", func(b *testing.B) {
		srv := serve.New(0, 0)
		defer srv.Close()
		d := mesh.MustDim(8, 8)
		nodes := d.AllNodes()
		buildWCET := func(queries int) []byte {
			var buf bytes.Buffer
			const perLine = 65536
			for q := 0; q < queries; {
				n := min(perLine, queries-q)
				buf.WriteString(`{"id":1,"op":"wcet-batch","design":"waw+wap","width":8,"height":8,"workload":"a2time","queries":[`)
				for i := 0; i < n; i++ {
					c := nodes[(q+i)%len(nodes)]
					if i > 0 {
						buf.WriteByte(',')
					}
					fmt.Fprintf(&buf, "[%d,%d]", c.X, c.Y)
				}
				buf.WriteString("]}\n")
				q += n
			}
			return buf.Bytes()
		}
		if err := srv.ServeLines(context.Background(), bytes.NewReader(buildWCET(len(nodes))), io.Discard); err != nil {
			b.Fatal(err)
		}
		in := buildWCET(b.N)
		b.ReportAllocs()
		b.ResetTimer()
		if err := srv.ServeLines(context.Background(), bytes.NewReader(in), io.Discard); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkTopology compares the cycle-accurate engine's per-cycle cost
// across the three topologies on the same 8x8 endpoint grid under identical
// sustained uniform-random load. The torus pays for wrap-aware route walks;
// the concentrated mesh steps a 2x2 router grid carrying the full 64-core
// traffic, so its per-cycle cost reflects 16 cores multiplexed per router.
// The cmesh-wctt sub-benchmark tracks the analytical path on the topology
// that has one (the torus is simulation-only).
func BenchmarkTopology(b *testing.B) {
	d := mesh.MustDim(8, 8)
	for _, tc := range []struct {
		name string
		topo mesh.TopoSpec
	}{
		{"mesh", mesh.TopoSpec{}},
		{"torus", mesh.TopoSpec{Kind: mesh.TopoTorus}},
		{"cmesh", mesh.TopoSpec{Kind: mesh.TopoCMesh, Conc: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := network.DefaultConfig(d, network.DesignWaWWaP)
			cfg.Topo = tc.topo
			net := network.MustNew(cfg)
			gen, err := traffic.NewUniformRandom(d, 3, 5, traffic.RequestPayloadBits, 1<<30)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, msg := range gen.Tick(net.Cycle()) {
					if _, err := net.Send(msg); err != nil {
						b.Fatal(err)
					}
				}
				net.Step()
			}
			b.ReportMetric(float64(net.TotalInjectedFlits())/float64(b.N), "flits/cycle")
		})
	}
	b.Run("cmesh-wctt", func(b *testing.B) {
		p := analysis.DefaultParams(d)
		p.Topo = mesh.TopoSpec{Kind: mesh.TopoCMesh, Conc: 4}
		m := analysis.MustNewModel(p)
		var maxWCTT uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := m.SummarizeOneFlitWCTT(network.DesignWaWWaP)
			if err != nil {
				b.Fatal(err)
			}
			maxWCTT = s.Max
		}
		b.ReportMetric(float64(maxWCTT), "cmesh-8x8-max-cycles")
	})
}
