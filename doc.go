// Package repro is a from-scratch Go reproduction of the system described in
// "Improving Performance Guarantees in Wormhole Mesh NoC Designs"
// (Panic, Hernandez, Abella, Roca Perez, Quinones, Cazorla — DATE 2016).
//
// The paper proposes two low-cost mechanisms that make worst-case traversal
// time (WCTT) bounds of wormhole-switched 2D-mesh NoCs tight, scalable and
// time-composable:
//
//   - WaP (WCTT-aware Packetization): the network interface slices every
//     request into minimum-size packets so the arbitration slot duration no
//     longer depends on the contenders' message sizes, and
//   - WaW (WCTT-aware Weighted round-robin arbitration): per-port arbitration
//     weights, derived statically from the XY routing algorithm, that give
//     every flow the same guaranteed share of every link it crosses.
//
// This module contains the complete stack needed to reproduce the paper's
// evaluation: the mesh/routing/flit substrate, a cycle-accurate wormhole NoC
// simulator with pluggable arbitration and packetization, the analytical
// WCTT and WCET models, synthetic models of the EEMBC Automotive suite and
// of the 3DPP avionics application, an area model, a CLI (cmd/noctool),
// runnable examples (examples/) and a benchmark harness (bench_test.go)
// that regenerates every table and figure of the paper.
//
// Every experiment flows through a unified, two-package experiment layer:
//
//   - internal/scenario declares experiments: a Spec names the mesh size,
//     design point, mode (analytical WCTT, cycle-accurate simulation,
//     many-core workload, parallel WCET, per-core WCET map, load-curve
//     saturation study), workload or traffic selection and seeds. Specs
//     validate, carry sweep axes (sizes x designs x workloads) that Expand
//     crosses into concrete scenarios, and execute into a stable,
//     JSON-serialisable Result.
//   - internal/sweep executes spec lists on a worker pool (Run/Expand with
//     a configurable job count, GOMAXPROCS by default) with deterministic,
//     spec-ordered aggregation and progress callbacks: a sweep's aggregated
//     output is byte-identical for 1 worker and for N.
//
// The cycle-accurate simulator (internal/network) schedules its cycle loop
// with an active-set engine: Step only visits routers with occupied input
// buffers or still-replenishing WaW arbitration counters, and NICs with
// pending injection flits. A router enters the active set when a flit is
// staged into one of its inputs or a credit returns to one of its outputs,
// and leaves it when quiescent (empty inputs, idle-stable arbiters on all
// unlocked output ports), so skipped visits are provably no-ops and the
// engine is cycle-for-cycle identical to the full per-node scan — which is
// retained as network.EngineFullScan and pinned to the active-set engine by
// equivalence tests. Per-router neighbour indices are precomputed and every
// per-cycle buffer is reused, making the steady-state loop allocation-free.
// The load-curve scenario mode builds the classical saturation study on top
// of this engine: per injection rate it runs warmup, measurement and drain
// windows of sustained uniform-random traffic and reports throughput plus
// total- and network-latency distributions (network latency excludes the
// source-queueing time; see noctool sweep -mode load-curve).
//
// The layering is: substrate (mesh, flit, router, network, traffic,
// manycore, analysis, wcet, workload) -> scenario -> sweep -> facade
// (internal/core) -> CLI/examples/benchmarks. The core package's table and
// figure functions, the noctool commands (including the grid-running
// `noctool sweep`) and the examples are all thin adapters over this layer.
// See README.md for the user-facing documentation.
package repro
