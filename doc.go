// Package repro is a from-scratch Go reproduction of the system described in
// "Improving Performance Guarantees in Wormhole Mesh NoC Designs"
// (Panic, Hernandez, Abella, Roca Perez, Quinones, Cazorla — DATE 2016).
//
// The paper proposes two low-cost mechanisms that make worst-case traversal
// time (WCTT) bounds of wormhole-switched 2D-mesh NoCs tight, scalable and
// time-composable:
//
//   - WaP (WCTT-aware Packetization): the network interface slices every
//     request into minimum-size packets so the arbitration slot duration no
//     longer depends on the contenders' message sizes, and
//   - WaW (WCTT-aware Weighted round-robin arbitration): per-port arbitration
//     weights, derived statically from the XY routing algorithm, that give
//     every flow the same guaranteed share of every link it crosses.
//
// This module contains the complete stack needed to reproduce the paper's
// evaluation: the mesh/routing/flit substrate, a cycle-accurate wormhole NoC
// simulator with pluggable arbitration and packetization, the analytical
// WCTT and WCET models, synthetic models of the EEMBC Automotive suite and
// of the 3DPP avionics application, an area model, a CLI (cmd/noctool),
// runnable examples (examples/) and a benchmark harness (bench_test.go)
// that regenerates every table and figure of the paper.
//
// Every experiment flows through a unified, two-package experiment layer:
//
//   - internal/scenario declares experiments: a Spec names the mesh size,
//     design point, mode (analytical WCTT, cycle-accurate simulation,
//     many-core workload, parallel WCET, per-core WCET map, load-curve
//     saturation study), workload or traffic selection and seeds. Specs
//     validate, carry sweep axes (sizes x designs x workloads) that Expand
//     crosses into concrete scenarios, and execute into a stable,
//     JSON-serialisable Result.
//   - internal/sweep executes spec lists through a pluggable Executor +
//     ResultSink pair: an Executor (the in-process worker pool, or the
//     multi-process Coordinator fanning tasks out to `noctool sweep -worker`
//     subprocesses over the JSON-line protocol of PROTOCOL.md) pushes each
//     finished scenario into composable sinks — the in-memory spec-ordered
//     Collector behind Run, a streaming JSONL sink, and a checkpoint writer
//     whose finished-index + result-hash log makes interrupted sweeps
//     resumable (`noctool sweep -out -checkpoint -resume`). Aggregated
//     output is byte-identical for 1 worker and for N, for every
//     -worker-procs count, and across any kill/resume schedule — execution
//     policy never touches results.
//
// The cycle-accurate simulator (internal/network) schedules its cycle loop
// with an active-set engine: Step only visits routers holding flits and
// NICs with pending injection flits. A router enters the active set when a
// flit is staged into one of its inputs and leaves it as soon as its input
// FIFOs are empty; the idle-cycle WaW replenishment it still owes is
// tracked lazily and replayed in bulk when the router wakes. Because the
// active set empties the moment no flit exists anywhere, Run,
// RunUntilDrained and traffic.Drive leap over event-idle windows in O(1)
// (time-leap scheduling): a leap is legal iff no component's
// earliest-possible-action horizon — the traffic generator's next issue
// cycle (traffic.EventSource), a WaW counter still replenishing, a staged
// transfer — precedes the target cycle. Skipped visits and leapt cycles
// are provably no-ops, so the engine is cycle-for-cycle identical to the
// full per-node scan — retained as network.EngineFullScan and pinned by
// equivalence, lockstep-microstate and leap-vs-step tests. Each network
// owns a flit.Pool from which generators draw messages and NICs draw
// flits, with every consumed object recycled (delivery callbacks must not
// retain their *Message), and Network.Reset rewinds a network in place so
// the scenario layer reuses one constructed topology per worker across
// sweep points — together making the steady-state cycle loop free of heap
// allocations, injection included.
// A single cycle-accurate run itself parallelizes through sharding
// (network.Config.Shards, noctool sweep -shards, scenario.Spec.Shards):
// the mesh is partitioned into index-contiguous row stripes, each with its
// own active set, scratch buffers, pool arena and per-flow statistics,
// stepped concurrently on a reusable barrier gang (sweep/pool.Gang) with a
// shard-local compute phase and a deterministic commit phase that applies
// cross-stripe arrivals and credits in fixed order and replays delivery
// hooks in global node order. Sharded output is byte-identical to the
// serial engine for every shard count — the shard count is execution
// policy, like the sweep's worker count — pinned by sharded equivalence,
// lockstep and hook-order tests plus pre-sharding CLI goldens; this is
// what opens 16x16-32x32 simulate and load-curve sweep points
// (examples/simscaling).
// The load-curve scenario mode builds the classical saturation study on top
// of this engine: per injection rate it runs warmup, measurement and drain
// windows of sustained uniform-random traffic and reports throughput plus
// total- and network-latency distributions (network latency excludes the
// source-queueing time; see noctool sweep -mode load-curve).
//
// The analytical stack mirrors the simulator's flat-indexed design: WaW
// weight tables are fixed-size arrays in a per-node-index slice shared per
// mesh (flows.CachedWeightTable), analysis.Model precomputes per-node
// contender counts and output shares so the WCTT bound functions walk XY
// routes as pure index arithmetic with zero allocations (mesh.WalkXY /
// mesh.AppendXYHops are the general-purpose allocation-free walkers), and
// wcet.Platform.Engine compiles a platform once per (platform, packet-size)
// value — validation once per table, per-core round-trip UBDs once per
// design, each Table III cell pure arithmetic. The scenario layer caches
// models per parameter set next to its network cache, and models memoise
// MessageWCTT per (design, src, dst, payload); every cache is keyed by the
// full parameter value and every cached object is immutable, so no
// invalidation protocol exists. The pre-refactor implementations are kept
// as a naive reference path (analysis.Model.Reference*, mirroring
// network.EngineFullScan) and equivalence tests plus pre-refactor JSON
// goldens pin the fast path bit-identical; the speedup opens the wctt and
// wcet-map scenario axes to 16x16-32x32 meshes.
// On top of the per-pair path sit incremental all-pairs kernels
// (internal/analysis/kernel.go): two flows sharing a route prefix repeat
// the same per-hop folds along it, so the kernels sweep pairs in route
// order and carry the exact fold state between them — destination-major
// for the chained-blocking bound, whose (total, interval) state depends
// only on already-folded hops, and source-major for the WaW bound, whose
// per-hop slot terms compose additively while the packet-count finishing
// term reads only the running output-share maximum and is applied on a
// copy. The O(N^2 * hops) all-pairs loop becomes amortized O(1) per pair
// with results bit-identical by construction (the identical
// saturating-arithmetic sequence, no reassociation); the retained
// per-pair reference (PairwiseSummarizeOneFlitWCTT, per-core
// RoundTripUBD) pins equivalence across designs, dims and concentrated
// meshes. SummarizeOneFlitWCTT, the wcet engine's round-trip UBD
// precomputation (AllCoresRoundTripUBD row sweeps, Engine.WCETMap), the
// wctt/wcet-map scenario modes and the serve daemon's whole-mesh batch
// warm path (Model.WarmAllPairs) all run on the kernels, extending the
// analytical sweep axes to 48x48 and 64x64 — where the regular bound
// saturates uint64 and is reported as the explicit value 2^64-1
// (examples/wcttscaling prints a `saturated` marker and keeps saturated
// endpoints out of growth ratios). cmd/benchgate gates the committed
// kernel-vs-reference speedup ratios in CI against BENCH_baseline.json.
//
// Topology is a pluggable layer underneath all of this (mesh.Topology,
// mesh.TopoSpec): the 2D mesh is one instance of an interface that owns the
// node index space, the neighbour/port tables, the allocation-free route
// walkers (generic over the concrete topology type, so the mesh keeps its
// devirtualised fast path) and the WaW channel-load table. Beside the
// reference mesh ship a torus (wrap links, shortest-wrap dimension-ordered
// routing; simulation-only, since its channel loads break the paper's
// chained-blocking argument) and concentrated meshes (2 or 4 cores per
// router, with the Section III bounds transferred via concentration-scaled
// loads). Simulator, analytical engine, traffic patterns, scenario/sweep
// (Spec.Topology, noctool -topology, topology-keyed caches) and the serve
// protocol (PROTOCOL.md's topology field) all consume the interface; the
// mesh's output is byte-identical to the pre-topology code, pinned by
// goldens, and modes a topology cannot honour are rejected with actionable
// errors (wctt needs Analytical(), the WCET platform is mesh-only).
//
// The layering is: substrate (mesh, flit, router, network, traffic,
// manycore, analysis, wcet, workload) -> scenario -> sweep -> facade
// (internal/core) -> CLI/examples/benchmarks. The core package's table and
// figure functions, the noctool commands (including the grid-running
// `noctool sweep`) and the examples are all thin adapters over this layer.
// Process boundaries share one infrastructure slice: internal/lineio owns
// the JSON-line framing limits, scenario.CanonicalJSON is the single wire
// and cache-key encoding of a spec, and both the serve daemon and the sweep
// worker protocol are built on the pair.
// See README.md for the user-facing documentation.
package repro
