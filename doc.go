// Package repro is a from-scratch Go reproduction of the system described in
// "Improving Performance Guarantees in Wormhole Mesh NoC Designs"
// (Panic, Hernandez, Abella, Roca Perez, Quinones, Cazorla — DATE 2016).
//
// The paper proposes two low-cost mechanisms that make worst-case traversal
// time (WCTT) bounds of wormhole-switched 2D-mesh NoCs tight, scalable and
// time-composable:
//
//   - WaP (WCTT-aware Packetization): the network interface slices every
//     request into minimum-size packets so the arbitration slot duration no
//     longer depends on the contenders' message sizes, and
//   - WaW (WCTT-aware Weighted round-robin arbitration): per-port arbitration
//     weights, derived statically from the XY routing algorithm, that give
//     every flow the same guaranteed share of every link it crosses.
//
// This module contains the complete stack needed to reproduce the paper's
// evaluation: the mesh/routing/flit substrate, a cycle-accurate wormhole NoC
// simulator with pluggable arbitration and packetization, the analytical
// WCTT and WCET models, synthetic models of the EEMBC Automotive suite and
// of the 3DPP avionics application, an area model, a CLI (cmd/noctool),
// runnable examples (examples/) and a benchmark harness (bench_test.go)
// that regenerates every table and figure of the paper. See README.md,
// DESIGN.md and EXPERIMENTS.md for the full documentation.
package repro
