// End-to-end integration tests: each test checks one headline claim of the
// paper against the full stack (analytical models, workload models and
// cycle-accurate simulator together). The per-package tests cover the
// mechanisms; these tests cover the story.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/mesh"
	"repro/internal/network"
	"repro/internal/traffic"
	"repro/internal/wcet"
)

// Claim (Table II / abstract): the WCTT bounds of the regular wNoC "poorly
// scale with network size", while the proposed design's bounds are scalable —
// for the 64-core mesh the paper reports a max-WCTT gap of four orders of
// magnitude.
func TestClaimWCTTScalability(t *testing.T) {
	rows, err := core.TableII(core.PaperTableIISizes())
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.Dim != mesh.MustDim(8, 8) {
		t.Fatalf("last row is %v, want 8x8", last.Dim)
	}
	gap := float64(last.Regular.Max) / float64(last.WaWWaP.Max)
	if gap < 1000 {
		t.Errorf("8x8 max-WCTT gap = %.0fx, expected >= 3 orders of magnitude (paper: ~15,000x)", gap)
	}
	// And the small-mesh regular design is not yet broken: for 2x2 the two
	// designs are within a small factor of each other.
	first := rows[0]
	smallGap := float64(first.Regular.Max) / float64(first.WaWWaP.Max)
	if smallGap > 3 {
		t.Errorf("2x2 gap = %.1fx; the scalability problem should only appear as the mesh grows", smallGap)
	}
}

// Claim (abstract): WCET estimates of single-threaded applications decrease
// by large factors for most cores, while a minority of well-placed cores see
// a bounded slowdown.
func TestClaimEEMBCWCETReduction(t *testing.T) {
	table, err := core.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	var improved, degraded int
	var bestImprovement float64 = 1
	for _, row := range table {
		for _, v := range row {
			if v > 1 {
				degraded++
				if v > 2 {
					t.Errorf("no core should slow down by more than ~2x, found %.2f", v)
				}
			} else if v < bestImprovement {
				bestImprovement = v
			}
			if v < 0.5 {
				improved++
			}
		}
	}
	if degraded >= improved {
		t.Errorf("more degraded (%d) than clearly improved (%d) cores", degraded, improved)
	}
	if 1/bestImprovement < 100 {
		t.Errorf("best core improves only %.0fx, expected orders of magnitude", 1/bestImprovement)
	}
}

// Claim (abstract): the parallel avionics application's WCET estimate
// improves by a factor that grows with the allowed packet size, and the
// proposed design bounds the impact of placement.
func TestClaimAvionicsWCET(t *testing.T) {
	a, err := core.Figure2a()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(a); i++ {
		if a[i].Improvement() <= a[i-1].Improvement() {
			t.Errorf("improvement should grow with the packet size: %+v", a)
		}
	}
	b, err := core.Figure2b()
	if err != nil {
		t.Fatal(err)
	}
	var regs, waws []float64
	for _, p := range b {
		regs = append(regs, p.RegularMs)
		waws = append(waws, p.WaWWaPMs)
	}
	if wcet.Variability(waws) > 1.5 {
		t.Errorf("WaW+WaP placement variability %.2fx, expected narrow (paper ~20%%)", wcet.Variability(waws))
	}
	if wcet.Variability(regs) < 2*wcet.Variability(waws) {
		t.Errorf("regular placement variability (%.1fx) should dwarf WaW+WaP's (%.2fx)",
			wcet.Variability(regs), wcet.Variability(waws))
	}
}

// Claim (Section IV): the average-performance cost of the guarantees is
// negligible.
func TestClaimAveragePerformance(t *testing.T) {
	res, err := core.AveragePerformance(4, 4, "canrdr", 100, 30_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradationPct > 5 {
		t.Errorf("average-performance degradation %.2f%%, paper reports < 1%%", res.DegradationPct)
	}
}

// Claim (Section III): the hardware additions cost less than 5% NoC area.
func TestClaimAreaOverhead(t *testing.T) {
	cmp, err := core.AreaOverhead(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OverheadPercent() >= 5 || cmp.OverheadPercent() <= 0 {
		t.Errorf("area overhead %.2f%%, expected in (0, 5)", cmp.OverheadPercent())
	}
}

// Claim (Section II.B / Figure 1(b)): chained round-robin arbitration shares
// bandwidth unfairly between near and far flows, and the WaW+WaP design
// removes most of that gap. Verified on the cycle-accurate simulator with a
// saturating all-to-one pattern.
func TestClaimFairnessUnderCongestion(t *testing.T) {
	measureGap := func(design network.Design) float64 {
		d := mesh.MustDim(6, 1)
		net := network.MustNew(network.DefaultConfig(d, design))
		dst := mesh.Node{X: 0, Y: 0}
		near := mesh.Node{X: 1, Y: 0}
		far := mesh.Node{X: 5, Y: 0}
		const msgs = 60
		for i := 0; i < msgs; i++ {
			for _, src := range d.AllNodes() {
				if src == dst {
					continue
				}
				msg := &flit.Message{Flow: flit.FlowID{Src: src, Dst: dst}, PayloadBits: traffic.RequestPayloadBits, Class: flit.ClassRequest}
				if _, err := net.Send(msg); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !net.RunUntilDrained(1_000_000) {
			t.Fatalf("%v: did not drain", design)
		}
		nearMax := net.FlowStatsFor(flit.FlowID{Src: near, Dst: dst}).Latency.Max()
		farMax := net.FlowStatsFor(flit.FlowID{Src: far, Dst: dst}).Latency.Max()
		return farMax / nearMax
	}
	regGap := measureGap(network.DesignRegular)
	wawGap := measureGap(network.DesignWaWWaP)
	if wawGap >= regGap {
		t.Errorf("WaW+WaP should narrow the far/near worst-latency gap: regular %.2fx, WaW+WaP %.2fx", regGap, wawGap)
	}
}
