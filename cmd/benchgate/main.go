// Command benchgate is the CI perf-regression gate: it parses `go test
// -bench` output, looks up the ratio gates committed in
// BENCH_baseline.json, and fails when a kernel-vs-reference warm-path
// ratio has regressed by more than the tolerance.
//
// Gates are RATIOS between two benchmarks of the same run (the fast
// kernel path and its retained slow reference twin), not absolute
// ns/op values: absolute numbers differ wildly between the 1-CPU
// baseline recorder and the hosted CI runners, but the fast/slow ratio
// on one machine in one run is a stable measure of how much the
// structure-sharing kernels actually buy. A gate fails when
//
//	current_ratio < baseline_ratio * tolerance
//
// with the default tolerance 0.8, i.e. a >20% regression of the
// speedup factor. Baseline ratios are recorded as conservative floors
// (the slowest ratio seen across recorder and CI machines), so noise
// headroom is built into the committed number, not the tolerance.
//
// Usage:
//
//	go test -run xxx -bench ... . | tee bench.out
//	go run ./cmd/benchgate -bench bench.out [-baseline BENCH_baseline.json] [-tolerance 0.8]
//
// -bench - reads the benchmark output from stdin.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// gate is one committed ratio gate from the top-level "gates" array of
// BENCH_baseline.json. Fast and Slow name benchmarks as they appear in
// -bench output minus the GOMAXPROCS suffix (e.g.
// "BenchmarkAnalysis/tableii/32x32").
type gate struct {
	Name          string  `json:"name"`
	Fast          string  `json:"fast"`
	Slow          string  `json:"slow"`
	BaselineRatio float64 `json:"baseline_ratio"`
	Note          string  `json:"note,omitempty"`
}

// benchLine matches one result line of `go test -bench` output. The
// trailing -N GOMAXPROCS suffix is stripped from the name; the suffix
// group is tried before the name can swallow it because \S+? is
// non-greedy, so names that themselves end in digits (tableii/32x32)
// still parse correctly.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts ns/op per benchmark name. If a name appears more
// than once (-count > 1), the fastest run is kept — the gate should
// measure the achievable ratio, not scheduler noise.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op %q on line %q: %w", m[2], sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: reading bench output: %w", err)
	}
	return out, nil
}

// loadGates reads the top-level "gates" array from the baseline file.
func loadGates(path string) ([]gate, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	var file struct {
		Gates []gate `json:"gates"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return nil, fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	if len(file.Gates) == 0 {
		return nil, fmt.Errorf("benchgate: %s has no \"gates\" array", path)
	}
	for _, g := range file.Gates {
		if g.Name == "" || g.Fast == "" || g.Slow == "" || g.BaselineRatio <= 0 {
			return nil, fmt.Errorf("benchgate: malformed gate %+v (need name, fast, slow, baseline_ratio > 0)", g)
		}
	}
	return file.Gates, nil
}

// evaluate checks every gate against the parsed benchmark results.
// A missing benchmark is a hard failure: a gate that silently skips is
// a gate that silently stops gating.
func evaluate(gates []gate, bench map[string]float64, tolerance float64, w io.Writer) bool {
	ok := true
	for _, g := range gates {
		fast, fok := bench[g.Fast]
		slow, sok := bench[g.Slow]
		if !fok || !sok {
			missing := g.Fast
			if fok {
				missing = g.Slow
			}
			fmt.Fprintf(w, "FAIL %s: benchmark %q not found in bench output\n", g.Name, missing)
			ok = false
			continue
		}
		ratio := slow / fast
		floor := g.BaselineRatio * tolerance
		verdict := "PASS"
		if ratio < floor {
			verdict = "FAIL"
			ok = false
		}
		fmt.Fprintf(w, "%s %s: ratio %.2fx (%s %.0f ns / %s %.0f ns), floor %.2fx (baseline %.2fx * tolerance %.2f)\n",
			verdict, g.Name, ratio, g.Slow, slow, g.Fast, fast, floor, g.BaselineRatio, tolerance)
	}
	return ok
}

func run(args []string, benchIn io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchPath := fs.String("bench", "-", "benchmark output file (- for stdin)")
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "baseline file with the gates array")
	tolerance := fs.Float64("tolerance", 0.8, "minimum fraction of the baseline ratio that still passes (0.8 = fail on >20% regression)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *tolerance <= 0 || *tolerance > 1 {
		fmt.Fprintf(stderr, "benchgate: -tolerance must be in (0, 1], got %v\n", *tolerance)
		return 2
	}

	in := benchIn
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	bench, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	if len(bench) == 0 {
		fmt.Fprintln(stderr, "benchgate: no benchmark result lines found in input")
		return 2
	}
	gates, err := loadGates(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	if !evaluate(gates, bench, *tolerance, stdout) {
		fmt.Fprintln(stderr, "benchgate: performance regression detected")
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: all %d gates pass\n", len(gates))
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
