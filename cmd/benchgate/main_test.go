package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkAnalysis/tableii-4         	       2	    777762 ns/op
BenchmarkAnalysis/tableii/16x16-4   	       1	   2715662 ns/op
BenchmarkAnalysis/tableii/32x32-4   	       1	  45986847 ns/op
BenchmarkAnalysis/pairwise/16x16-4  	       1	  12200670 ns/op
BenchmarkAnalysis/pairwise/32x32-4  	       1	 357033145 ns/op
BenchmarkWCTT/wcetmap-64x64-kernel-4	       1	  50000000 ns/op	         4096 far-core-ubd-cycles
BenchmarkWCTT/wcetmap-64x64-pairwise-4	       1	 500000000 ns/op	         4096 far-core-ubd-cycles
BenchmarkServe/batch-warm           	 3360973	       358.4 ns/op	        38 B/op	       0 allocs/op
BenchmarkServe/wctt-lines           	  268151	      4419 ns/op	       888 B/op	      18 allocs/op
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkAnalysis/tableii":            777762,
		"BenchmarkAnalysis/tableii/16x16":      2715662,
		"BenchmarkAnalysis/tableii/32x32":      45986847,
		"BenchmarkAnalysis/pairwise/16x16":     12200670,
		"BenchmarkAnalysis/pairwise/32x32":     357033145,
		"BenchmarkWCTT/wcetmap-64x64-kernel":   50000000,
		"BenchmarkWCTT/wcetmap-64x64-pairwise": 500000000,
		"BenchmarkServe/batch-warm":            358.4,
		"BenchmarkServe/wctt-lines":            4419,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v ns/op, want %v", name, got[name], ns)
		}
	}
}

// The GOMAXPROCS suffix must be stripped even when the benchmark name
// itself ends in digits, and a repeated name must keep the fastest run.
func TestParseBenchSuffixAndRepeat(t *testing.T) {
	in := `BenchmarkX/32x32-16	1	200 ns/op
BenchmarkX/32x32-16	1	100 ns/op
BenchmarkY	1	50 ns/op
`
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX/32x32"] != 100 {
		t.Errorf("BenchmarkX/32x32 = %v, want fastest run 100", got["BenchmarkX/32x32"])
	}
	if got["BenchmarkY"] != 50 {
		t.Errorf("BenchmarkY = %v, want 50 (no suffix present)", got["BenchmarkY"])
	}
}

func TestEvaluate(t *testing.T) {
	bench := map[string]float64{
		"fastpath": 100,
		"slowpath": 750, // current ratio 7.5x
	}
	cases := []struct {
		name     string
		baseline float64
		tol      float64
		wantOK   bool
	}{
		{"well-above-floor", 7.8, 0.8, true},    // floor 6.24 < 7.5
		{"exactly-at-baseline", 7.5, 1.0, true}, // floor 7.5 == 7.5
		{"regressed", 10.0, 0.8, false},         // floor 8.0 > 7.5
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			gates := []gate{{Name: c.name, Fast: "fastpath", Slow: "slowpath", BaselineRatio: c.baseline}}
			if ok := evaluate(gates, bench, c.tol, &buf); ok != c.wantOK {
				t.Errorf("evaluate = %v, want %v\noutput: %s", ok, c.wantOK, buf.String())
			}
		})
	}
}

func TestEvaluateMissingBenchmarkFails(t *testing.T) {
	var buf bytes.Buffer
	gates := []gate{{Name: "g", Fast: "present", Slow: "absent", BaselineRatio: 2}}
	if ok := evaluate(gates, map[string]float64{"present": 10}, 0.8, &buf); ok {
		t.Fatalf("gate with missing benchmark must fail, output: %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"absent" not found`) {
		t.Errorf("output should name the missing benchmark: %s", buf.String())
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(baseline, []byte(`{
		"snapshots": [],
		"gates": [
			{"name": "analysis-32x32", "fast": "BenchmarkAnalysis/tableii/32x32", "slow": "BenchmarkAnalysis/pairwise/32x32", "baseline_ratio": 7.0},
			{"name": "serve-batch", "fast": "BenchmarkServe/batch-warm", "slow": "BenchmarkServe/wctt-lines", "baseline_ratio": 10.0}
		]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	benchFile := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(benchFile, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := run([]string{"-bench", benchFile, "-baseline", baseline}, nil, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "all 2 gates pass") {
		t.Errorf("stdout should report all gates passing: %s", out.String())
	}

	// Tightening the tolerance past the measured ratios must fail with
	// exit code 1 (32x32 measured 7.76x vs floor 7.0x at tolerance 1.0
	// passes; a baseline demanding 8x does not).
	if err := os.WriteFile(baseline, []byte(`{
		"gates": [{"name": "analysis-32x32", "fast": "BenchmarkAnalysis/tableii/32x32", "slow": "BenchmarkAnalysis/pairwise/32x32", "baseline_ratio": 12.0}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-bench", benchFile, "-baseline", baseline}, nil, &out, &errOut); code != 1 {
		t.Fatalf("regressed run = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "regression detected") {
		t.Errorf("stderr should announce the regression: %s", errOut.String())
	}
}

func TestRunStdinAndBadInputs(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(baseline, []byte(`{"gates": [{"name": "g", "fast": "BenchmarkY", "slow": "BenchmarkX/32x32", "baseline_ratio": 1.5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("BenchmarkX/32x32-16\t1\t100 ns/op\nBenchmarkY\t1\t50 ns/op\n")
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", baseline}, in, &out, &errOut); code != 0 {
		t.Fatalf("stdin run = %d, want 0\nstderr: %s", code, errOut.String())
	}

	// No bench lines at all → usage error, not a pass.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", baseline}, strings.NewReader("nothing here\n"), &out, &errOut); code != 2 {
		t.Fatalf("empty bench input = %d, want 2", code)
	}

	// Baseline without gates → usage error.
	noGates := filepath.Join(dir, "nogates.json")
	if err := os.WriteFile(noGates, []byte(`{"snapshots": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-baseline", noGates}, strings.NewReader("BenchmarkY\t1\t50 ns/op\n"), &out, &errOut); code != 2 {
		t.Fatalf("no-gates baseline = %d, want 2", code)
	}

	// Out-of-range tolerance → usage error.
	if code := run([]string{"-baseline", baseline, "-tolerance", "1.5"}, strings.NewReader("BenchmarkY\t1\t50 ns/op\n"), &out, &errOut); code != 2 {
		t.Fatalf("bad tolerance = %d, want 2", code)
	}
}
