package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCommandRegistry(t *testing.T) {
	for _, name := range []string{"weights", "wctt-table", "eembc", "avionics", "avgperf", "area", "simulate", "sweep"} {
		if _, ok := commands[name]; !ok {
			t.Errorf("command %q not registered", name)
		}
	}
}

func TestCmdWeightsTableI(t *testing.T) {
	var out strings.Builder
	if err := cmdWeights([]string{"-width", "2", "-height", "2", "-x", "1", "-y", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"W(PME,X-)", "W(Y+,PME)", "0.67", "0.33"} {
		if !strings.Contains(got, want) {
			t.Errorf("weights output missing %q:\n%s", want, got)
		}
	}
	if err := cmdWeights([]string{"-x", "9"}, &out); err == nil {
		t.Error("router outside mesh should fail")
	}
	if err := cmdWeights([]string{"-format", "xml"}, &out); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestCmdWCTTTable(t *testing.T) {
	var out strings.Builder
	if err := cmdWCTTTable([]string{"-max-size", "4", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "2x2") || !strings.Contains(got, "4x4") {
		t.Errorf("wctt-table output missing sizes:\n%s", got)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 4 { // header + 3 sizes
		t.Errorf("csv output has %d lines, want 4:\n%s", len(lines), got)
	}
	if err := cmdWCTTTable([]string{"-max-size", "1"}, &out); err == nil {
		t.Error("max-size below 2 should fail")
	}
}

func TestCmdArea(t *testing.T) {
	var out strings.Builder
	if err := cmdArea([]string{"-width", "4", "-height", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "WaW+WaP") || !strings.Contains(out.String(), "%") {
		t.Errorf("area output malformed:\n%s", out.String())
	}
	if err := cmdArea([]string{"-width", "0"}, &out); err == nil {
		t.Error("invalid mesh should fail")
	}
}

func TestCmdAvionics(t *testing.T) {
	var out strings.Builder
	if err := cmdAvionics([]string{"-format", "markdown"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Figure 2(a)") || !strings.Contains(got, "Figure 2(b)") {
		t.Errorf("avionics output missing figures:\n%s", got)
	}
	for _, placement := range []string{"P0", "P1", "P2", "P3"} {
		if !strings.Contains(got, placement) {
			t.Errorf("avionics output missing placement %s", placement)
		}
	}
}

func TestCmdAvgPerfSmall(t *testing.T) {
	var out strings.Builder
	err := cmdAvgPerf([]string{"-width", "3", "-height", "3", "-benchmark", "rspeed", "-scale", "500", "-max-cycles", "5000000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "degradation") && !strings.Contains(out.String(), "%") {
		t.Errorf("avgperf output malformed:\n%s", out.String())
	}
	if err := cmdAvgPerf([]string{"-benchmark", "nope"}, &out); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestCmdSimulateSmall(t *testing.T) {
	var out strings.Builder
	err := cmdSimulate([]string{"-width", "3", "-height", "3", "-messages", "40", "-rate", "50"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "regular") || !strings.Contains(got, "WaW+WaP") {
		t.Errorf("simulate output missing designs:\n%s", got)
	}
	if err := cmdSimulate([]string{"-width", "0"}, &out); err == nil {
		t.Error("invalid mesh should fail")
	}
	if err := cmdSimulate([]string{"-rate", "0"}, &out); err == nil {
		t.Error("invalid rate should fail")
	}
}

func TestCmdEEMBC(t *testing.T) {
	if testing.Short() {
		t.Skip("Table III over the full suite is slow")
	}
	var out strings.Builder
	if err := cmdEEMBC(nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table III") {
		t.Errorf("eembc output malformed:\n%s", out.String())
	}
}

func TestCmdSweepProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out strings.Builder
	err := cmdSweep([]string{
		"-mode", "simulate", "-sizes", "2,3", "-designs", "regular", "-shards", "2",
		"-messages", "50", "-cpuprofile", cpu, "-memprofile", mem, "-format", "csv",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
	if !strings.Contains(out.String(), "2x2") {
		t.Errorf("sweep output missing results:\n%s", out.String())
	}
	// Unwritable profile paths must fail up front, before any compute.
	if err := cmdSweep([]string{"-sizes", "2", "-cpuprofile", filepath.Join(dir, "no", "such", "dir", "p")}, &out); err == nil {
		t.Error("unwritable cpuprofile path should fail")
	}
	if err := cmdSweep([]string{"-sizes", "2", "-memprofile", filepath.Join(dir, "no", "such", "dir", "p")}, &out); err == nil {
		t.Error("unwritable memprofile path should fail")
	}
}

// TestCmdSweepShardsFlag: -shards applies to the cycle-accurate modes only,
// auto-resolves 0 (to the CPUs left per sweep worker), and rejects negative
// values.
func TestCmdSweepShardsFlag(t *testing.T) {
	var out strings.Builder
	if err := cmdSweep([]string{"-mode", "wctt", "-sizes", "2", "-shards", "2"}, &out); err == nil {
		t.Error("-shards should be rejected in -mode wctt")
	}
	if err := cmdSweep([]string{"-mode", "simulate", "-sizes", "2", "-messages", "20", "-shards", "-1"}, &out); err == nil {
		t.Error("negative -shards should fail")
	}
	out.Reset()
	if err := cmdSweep([]string{"-mode", "simulate", "-sizes", "3", "-messages", "20", "-shards", "0"}, &out); err != nil {
		t.Fatalf("-shards 0 (auto): %v", err)
	}
	if !strings.Contains(out.String(), "3x3") {
		t.Errorf("auto-sharded sweep output missing results:\n%s", out.String())
	}
}
