// Command noctool regenerates every table and figure of the paper
// "Improving Performance Guarantees in Wormhole Mesh NoC Designs"
// (Panic et al., DATE 2016) from the models and simulators of this
// repository.
//
// Usage:
//
//	noctool <command> [flags]
//
// Commands:
//
//	weights     Table I   — WaW arbitration weights of one router
//	wctt-table  Table II  — WCTT scalability across mesh sizes
//	eembc       Table III — per-core normalised WCET of the EEMBC suite
//	avionics    Figure 2  — WCET of the 3DPP avionics application
//	avgperf     Section IV— average-performance comparison
//	area        Section III— NoC area overhead of WaW+WaP
//	simulate    cycle-accurate hotspot simulation of both designs
//	sweep       declarative scenario grid run on the parallel sweep engine
//	serve       long-running timing daemon speaking the JSON-line protocol
//	            of PROTOCOL.md over stdin/stdout, TCP and HTTP
//
// The sweep command additionally offers -mode load-curve, which sweeps
// sustained uniform-random injection rates per design point and emits the
// latency-vs-throughput saturation curve of the mesh (see -rates, -warmup,
// -measure).
//
// Large sweeps scale out and survive interruption: -worker-procs fans the
// grid to `noctool sweep -worker` subprocesses speaking the JSON-line worker
// protocol (PROTOCOL.md), -out streams every result as a JSON line the
// moment it completes, and -checkpoint/-resume recover an interrupted run
// by recomputing only unfinished scenarios. Output stays byte-identical
// across worker counts and kill/resume schedules.
//
// Every command accepts -format text|csv|markdown|json. The experiment
// commands are thin adapters over the internal/scenario and internal/sweep
// layers, so grids of design points and mesh sizes execute across all CPU
// cores with deterministic aggregation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// commands maps the sub-command name to its implementation. Every command
// writes its output to the supplied writer so the commands are unit-testable.
var commands = map[string]func(args []string, w io.Writer) error{
	"weights":    cmdWeights,
	"wctt-table": cmdWCTTTable,
	"eembc":      cmdEEMBC,
	"avionics":   cmdAvionics,
	"avgperf":    cmdAvgPerf,
	"area":       cmdArea,
	"simulate":   cmdSimulate,
	"sweep":      cmdSweep,
	"serve":      cmdServe,
}

func usage() {
	fmt.Fprintf(os.Stderr, `noctool — reproduce the DATE 2016 WaW+WaP wormhole-mesh results

Usage:
  noctool <command> [flags]

Commands:
  weights      Table I:   arbitration weights of one router (regular vs WaW)
  wctt-table   Table II:  WCTT bounds across mesh sizes (regular vs WaW+WaP)
  eembc        Table III: per-core normalised WCET of the EEMBC Automotive suite
  avionics     Figure 2:  WCET of the 16-core 3DPP avionics application
  avgperf      average-performance comparison on the cycle-accurate simulator
  area         NoC area overhead of the WaW+WaP modifications
  simulate     cycle-accurate hotspot simulation comparing both designs
  sweep        run a scenario grid (sizes x designs x workloads) in parallel
               (-mode load-curve sweeps injection rates into saturation curves;
               -worker-procs scales out to worker subprocesses, and
               -out/-checkpoint/-resume stream results and survive interruption)
  serve        run the NoC timing daemon: WCTT/WCET queries and scenario
               specs over the JSON-line protocol (stdin/stdout, -listen TCP,
               -http HTTP; see PROTOCOL.md)

Run "noctool <command> -h" for command-specific flags. Every command accepts
-format text|csv|markdown|json; sweep additionally accepts -jobs.
`)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "-h" || name == "--help" || name == "help" {
		usage()
		return
	}
	cmd, ok := commands[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "noctool: unknown command %q\n\n", name)
		usage()
		os.Exit(2)
	}
	if err := cmd(os.Args[2:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "noctool %s: %v\n", name, err)
		os.Exit(1)
	}
}
