package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/scenario"
)

// TestServeMatchesSweepGolden pins the serve daemon to the one-shot CLI
// byte for byte: the scenario verb is fed exactly the grid behind
// sweep-sim-pre.golden, and the embedded result payloads, re-encoded the
// way cmdSweep encodes its results, must reproduce the golden unchanged.
// Caches, coalescing and worker scheduling are execution policy — a served
// answer may never differ from a freshly computed one.
func TestServeMatchesSweepGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "sweep-sim-pre.golden"))
	if err != nil {
		t.Fatal(err)
	}
	grid := scenario.Spec{
		Name:    "sweep",
		Mode:    scenario.ModeSimulate,
		Sizes:   []int{2, 3, 4, 5, 6},
		Designs: []network.Design{network.DesignRegular, network.DesignWaWWaP},
		Seed:    5,
		Traffic: scenario.Traffic{Pattern: "uniform", Rate: 40, Messages: 400},
		Shards:  1,
	}
	specs, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}

	var in bytes.Buffer
	for i, spec := range specs {
		sj, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&in, `{"id":%d,"op":"scenario","spec":%s}`+"\n", i+1, sj)
	}
	var out strings.Builder
	if err := serveOn([]string{"-workers", "4"}, &in, &out); err != nil {
		t.Fatal(err)
	}

	// Reassemble the served result payloads into the sweep command's output
	// framing (an indent-2 JSON array in request order).
	var results []json.RawMessage
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var r struct {
			ID     int64           `json:"id"`
			OK     bool            `json:"ok"`
			Result json.RawMessage `json:"result"`
			Error  string          `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad response %q: %v", line, err)
		}
		if !r.OK {
			t.Fatalf("scenario %d failed: %s", r.ID, r.Error)
		}
		if r.ID != int64(len(results)+1) {
			t.Fatalf("responses out of order: got id %d at position %d", r.ID, len(results))
		}
		results = append(results, r.Result)
	}
	if len(results) != len(specs) {
		t.Fatalf("served %d results for %d specs", len(results), len(specs))
	}
	var got bytes.Buffer
	enc := json.NewEncoder(&got)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Errorf("served results differ from sweep-sim-pre.golden:\n--- got ---\n%.2000s\n--- want ---\n%.2000s", got.String(), want)
	}
}

// TestServeSmokeGolden pins the full protocol surface (ping, wctt, batch,
// wcet, wcet-batch, scenario, and an error line) to a committed golden —
// the same request/response pair the CI smoke step replays over stdin and
// TCP against the built binary.
func TestServeSmokeGolden(t *testing.T) {
	reqs, err := os.ReadFile(filepath.Join("testdata", "serve-smoke.requests"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "serve-smoke.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []string{"1", "4"} {
		var out strings.Builder
		if err := serveOn([]string{"-workers", workers}, bytes.NewReader(reqs), &out); err != nil {
			t.Fatal(err)
		}
		if out.String() != string(want) {
			t.Errorf("-workers %s responses differ from serve-smoke.golden:\n--- got ---\n%s\n--- want ---\n%s", workers, out.String(), want)
		}
	}
}

func TestServeFlagValidation(t *testing.T) {
	if err := serveOn([]string{"-no-stdin"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("-no-stdin without listeners should fail")
	}
	if err := serveOn([]string{"-workers", "-2"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("negative -workers should fail")
	}
}
