package main

import (
	"context"
	"flag"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/network"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/tablegen"
	"repro/internal/traffic"
)

// newFlagSet builds a flag set with the shared -format flag.
func newFlagSet(name string) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	format := fs.String("format", "text", "output format: text, csv, markdown or json")
	return fs, format
}

func render(w io.Writer, t *tablegen.Table, formatName string) error {
	f, err := tablegen.ParseFormat(formatName)
	if err != nil {
		return err
	}
	return t.Render(w, f)
}

// cmdWeights reproduces Table I: the arbitration weights of one router.
func cmdWeights(args []string, w io.Writer) error {
	fs, format := newFlagSet("weights")
	width := fs.Int("width", 2, "mesh width (N)")
	height := fs.Int("height", 2, "mesh height (M)")
	x := fs.Int("x", 1, "router x coordinate")
	y := fs.Int("y", 1, "router y coordinate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	entries, err := core.TableI(*width, *height, *x, *y)
	if err != nil {
		return err
	}
	t := tablegen.New(
		fmt.Sprintf("Table I — arbitration weights of router R(%d,%d) in a %dx%d mesh", *x, *y, *width, *height),
		"pair", "regular mesh", "weighted mesh (WaW)")
	for _, e := range entries {
		t.AddRow(e.Pair.String(), fmt.Sprintf("%.2f", e.Regular), fmt.Sprintf("%.2f", e.WaW))
	}
	return render(w, t, *format)
}

// cmdWCTTTable reproduces Table II: WCTT bounds for growing mesh sizes.
func cmdWCTTTable(args []string, w io.Writer) error {
	fs, format := newFlagSet("wctt-table")
	maxSize := fs.Int("max-size", 8, "largest square mesh size to analyse (the paper uses 8)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxSize < 2 {
		return fmt.Errorf("max-size must be at least 2")
	}
	var sizes []int
	for s := 2; s <= *maxSize; s++ {
		sizes = append(sizes, s)
	}
	rows, err := core.TableII(sizes)
	if err != nil {
		return err
	}
	t := tablegen.New("Table II — WCTT values for 1-flit packets (cycles)",
		"NxM", "regular max", "regular mean", "regular min", "WaW+WaP max", "WaW+WaP mean", "WaW+WaP min")
	for _, r := range rows {
		t.AddRow(r.Dim.String(),
			fmt.Sprintf("%d", r.Regular.Max), fmt.Sprintf("%.2f", r.Regular.Mean), fmt.Sprintf("%d", r.Regular.Min),
			fmt.Sprintf("%d", r.WaWWaP.Max), fmt.Sprintf("%.2f", r.WaWWaP.Mean), fmt.Sprintf("%d", r.WaWWaP.Min))
	}
	return render(w, t, *format)
}

// cmdEEMBC reproduces Table III: the per-core normalised WCET map.
func cmdEEMBC(args []string, w io.Writer) error {
	fs, format := newFlagSet("eembc")
	if err := fs.Parse(args); err != nil {
		return err
	}
	table, err := core.TableIII()
	if err != nil {
		return err
	}
	t := tablegen.Matrix("Table III — normalised WCET per core (WaW+WaP / regular), memory at R(0,0)", table, "%.4f")
	return render(w, t, *format)
}

// cmdAvionics reproduces Figure 2: the 3DPP avionics WCET estimates.
func cmdAvionics(args []string, w io.Writer) error {
	fs, format := newFlagSet("avionics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := core.Figure2a()
	if err != nil {
		return err
	}
	ta := tablegen.New("Figure 2(a) — 3DPP WCET estimate under placement P0 (ms)",
		"max packet size", "regular wNoC", "WaW+WaP", "improvement")
	for _, p := range a {
		ta.AddRow(fmt.Sprintf("L%d", p.MaxPacketFlits),
			fmt.Sprintf("%.2f", p.RegularMs), fmt.Sprintf("%.2f", p.WaWWaPMs),
			fmt.Sprintf("%.2fx", p.Improvement()))
	}
	if err := render(w, ta, *format); err != nil {
		return err
	}
	fmt.Fprintln(w)
	b, err := core.Figure2b()
	if err != nil {
		return err
	}
	tb := tablegen.New("Figure 2(b) — 3DPP WCET estimate across placements, L1 (ms)",
		"placement", "regular wNoC", "WaW+WaP", "improvement")
	for _, p := range b {
		tb.AddRow(p.Placement, fmt.Sprintf("%.2f", p.RegularMs), fmt.Sprintf("%.2f", p.WaWWaPMs),
			fmt.Sprintf("%.2fx", p.RegularMs/p.WaWWaPMs))
	}
	return render(w, tb, *format)
}

// cmdAvgPerf runs the cycle-accurate average-performance comparison.
func cmdAvgPerf(args []string, w io.Writer) error {
	fs, format := newFlagSet("avgperf")
	width := fs.Int("width", 8, "mesh width")
	height := fs.Int("height", 8, "mesh height")
	bench := fs.String("benchmark", "matrix", "EEMBC kernel to run on every core")
	scale := fs.Int("scale", 200, "divide the kernel's instruction count by this factor")
	maxCycles := fs.Int("max-cycles", 50_000_000, "simulation cycle budget per design")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := core.AveragePerformance(*width, *height, *bench, *scale, *maxCycles)
	if err != nil {
		return err
	}
	t := tablegen.New(fmt.Sprintf("Average performance — %s on every core of a %v mesh", res.Benchmark, res.Dim),
		"design", "makespan (cycles)", "degradation")
	t.AddRow("regular wNoC", fmt.Sprintf("%d", res.RegularCycles), "-")
	t.AddRow("WaW+WaP", fmt.Sprintf("%d", res.WaWWaPCycles), fmt.Sprintf("%.2f%%", res.DegradationPct))
	return render(w, t, *format)
}

// cmdArea reports the NoC area overhead of the WaW+WaP modifications.
func cmdArea(args []string, w io.Writer) error {
	fs, format := newFlagSet("area")
	width := fs.Int("width", 8, "mesh width")
	height := fs.Int("height", 8, "mesh height")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cmp, err := core.AreaOverhead(*width, *height)
	if err != nil {
		return err
	}
	t := tablegen.New(fmt.Sprintf("NoC area (gate equivalents) for a %v mesh", cmp.Dim),
		"design", "area", "overhead")
	t.AddRow("regular wNoC", fmt.Sprintf("%.0f", cmp.RegularTotal), "-")
	t.AddRow("WaW+WaP", fmt.Sprintf("%.0f", cmp.WaWWaPTotal), fmt.Sprintf("%.2f%%", cmp.OverheadPercent()))
	return render(w, t, *format)
}

// cmdSimulate runs a cycle-accurate all-to-one hotspot simulation on both
// designs and reports the per-flow latency spread, the measured counterpart
// of Table II's analytical story. The two design runs are declared as
// scenario specs and execute concurrently on the sweep engine.
func cmdSimulate(args []string, w io.Writer) error {
	fs, format := newFlagSet("simulate")
	width := fs.Int("width", 8, "mesh width")
	height := fs.Int("height", 8, "mesh height")
	topology := fs.String("topology", "mesh", "network topology: mesh, torus, cmesh (4 cores/router) or cmesh2")
	messages := fs.Int("messages", 2000, "total number of request messages to inject")
	rate := fs.Int("rate", 30, "per-node injection probability per cycle (percent)")
	seed := fs.Int64("seed", 1, "pseudo-random seed")
	maxCycles := fs.Int("max-cycles", 5_000_000, "simulation cycle budget per design")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := mesh.NewDim(*width, *height)
	if err != nil {
		return err
	}
	ts, err := mesh.ParseTopology(*topology)
	if err != nil {
		return err
	}
	if *rate <= 0 || *rate > 100 {
		return fmt.Errorf("rate must be in 1..100 percent, got %d", *rate)
	}
	target := mesh.Node{X: 0, Y: 0}
	results, err := sweep.Expand(context.Background(), scenario.Spec{
		Name:     "simulate",
		Mode:     scenario.ModeSimulate,
		Topology: *topology,
		Width:    *width,
		Height:   *height,
		Seed:     *seed,
		Traffic: scenario.Traffic{
			Pattern:     "hotspot",
			Rate:        *rate,
			Messages:    *messages,
			PayloadBits: traffic.RequestPayloadBits,
			Target:      target,
		},
		MaxCycles: *maxCycles,
		Designs:   []network.Design{network.DesignRegular, network.DesignWaWWaP},
	}, sweep.Options{})
	if err != nil {
		return err
	}
	topoName := "mesh"
	if ts.Kind != mesh.TopoMesh {
		topoName = ts.String()
	}
	t := tablegen.New(fmt.Sprintf("Hotspot simulation — %d one-flit requests towards %v on a %v %s", *messages, target, d, topoName),
		"design", "delivered", "min latency", "mean latency", "max latency")
	for _, r := range results {
		t.AddRow(r.Design, fmt.Sprintf("%d", r.Sim.Delivered),
			fmt.Sprintf("%.0f", r.Sim.MinLatency), fmt.Sprintf("%.1f", r.Sim.MeanLatency), fmt.Sprintf("%.0f", r.Sim.MaxLatency))
	}
	return render(w, t, *format)
}
