package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof
	"os"
	"os/signal"
	"sync"
	"syscall"

	"repro/internal/serve"
)

// cmdServe runs the NoC timing daemon: a long-running server answering
// WCTT/WCET queries and whole scenario specs over the JSON-line protocol
// (see PROTOCOL.md). By default it serves stdin/stdout; -listen adds a TCP
// transport and -http an HTTP one, all sharing one worker pool and the
// scenario layer's caches. Stdin EOF, SIGINT and SIGTERM all drain
// gracefully: admitted lines are answered, then every transport shuts down.
func cmdServe(args []string, w io.Writer) error {
	return serveOn(args, os.Stdin, w)
}

// serveOn is cmdServe with the stdin stream injectable for tests.
func serveOn(args []string, in io.Reader, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	listen := fs.String("listen", "", "also serve the line protocol on this TCP address (e.g. :9000)")
	httpAddr := fs.String("http", "", "also serve HTTP on this address (POST = protocol lines, GET = stats)")
	workers := fs.Int("workers", 0, "request workers shared across all transports; 0 = GOMAXPROCS")
	queue := fs.Int("queue", 0, "per-connection response queue depth (the backpressure bound); 0 = default")
	maxInflight := fs.Int("max-inflight", 0, "admitted-but-unanswered lines across all transports before excess lines are answered with the retryable \"overloaded\" error; 0 = unbounded (backpressure only)")
	queryTimeout := fs.Duration("query-timeout", 0, "deadline budget per query verb (wctt, batch, wcet, wcet-batch); 0 = none")
	scenarioTimeout := fs.Duration("scenario-timeout", 0, "deadline budget per scenario verb; 0 = none")
	pprofAddr := fs.String("pprof", "", "expose net/http/pprof on this address")
	noStdin := fs.Bool("no-stdin", false, "do not serve stdin/stdout (daemon mode; requires -listen or -http)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *noStdin && *listen == "" && *httpAddr == "" {
		return fmt.Errorf("serve: -no-stdin with neither -listen nor -http leaves nothing to serve")
	}
	if *workers < 0 || *queue < 0 {
		return fmt.Errorf("serve: negative -workers or -queue")
	}
	if *maxInflight < 0 || *queryTimeout < 0 || *scenarioTimeout < 0 {
		return fmt.Errorf("serve: negative -max-inflight or timeout")
	}

	srv := serve.NewServer(serve.Config{
		Workers:         *workers,
		Queue:           *queue,
		MaxInflight:     *maxInflight,
		QueryTimeout:    *queryTimeout,
		ScenarioTimeout: *scenarioTimeout,
	})
	defer srv.Close()
	ctx := context.Background()

	if *pprofAddr != "" {
		// Observability sidecar on the default mux (pprof, expvar); failures
		// must not take the daemon down.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "noctool serve: pprof: %v\n", err)
			}
		}()
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	var hsrv *http.Server
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "noctool serve: listening on %s\n", ln.Addr())
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.ServeListener(ctx, ln); err != nil {
				errCh <- err
			}
		}()
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "noctool serve: http on %s\n", ln.Addr())
		hsrv = &http.Server{Handler: srv.Handler()}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := hsrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				errCh <- err
			}
		}()
	}

	// drain stops admission everywhere, answers what was admitted, then lets
	// the transport loops finish.
	drain := func() {
		srv.Shutdown()
		if hsrv != nil {
			_ = hsrv.Shutdown(context.Background())
		}
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		if _, ok := <-sig; ok {
			fmt.Fprintln(os.Stderr, "noctool serve: draining")
			drain()
		}
	}()

	var stdinErr error
	if !*noStdin {
		// Stdin closing drains the whole daemon, so piped batch runs with
		// auxiliary listeners exit cleanly at EOF.
		stdinErr = srv.ServeLines(ctx, in, w)
		drain()
	}
	wg.Wait()
	signal.Stop(sig)
	close(sig)
	if stdinErr != nil {
		return stdinErr
	}
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}
