package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
)

// TestMain doubles the test binary as a sweep worker. The coordinator spawns
// os.Executable() with the arguments "sweep -worker", which a test binary
// cannot parse — but it also sets NOCTOOL_SWEEP_WORKER in the child's
// environment, so the worker role is recognisable before any flag parsing.
// This makes the multi-process golden tests below exercise real subprocesses
// speaking the real protocol, not an in-process stand-in.
func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		if err := sweep.ServeWorker(context.Background(), os.Stdin, os.Stdout, sweep.WorkerHooks{}); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestGoldenWorkerProcs pins the multi-process executor to the pre-refactor
// goldens: the same cycle-accurate grids that must be byte-identical across
// shard counts must also be byte-identical when fanned out to 1, 2 or 4
// worker subprocesses. Process distribution is execution policy, never
// scenario identity — exactly the discipline the in-process pool already
// obeys for -jobs and -shards.
func TestGoldenWorkerProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	simArgs := []string{"-mode", "simulate", "-sizes", "2..6", "-designs", "regular,waw+wap",
		"-pattern", "uniform", "-rate", "40", "-messages", "400", "-seed", "5", "-format", "json"}
	lcArgs := []string{"-mode", "load-curve", "-sizes", "3,4", "-designs", "regular,waw+wap",
		"-seed", "3", "-rates", "50,200,500", "-warmup", "500", "-measure", "2500", "-format", "json"}
	for _, c := range []struct {
		golden string
		args   []string
	}{
		{"sweep-sim-pre.golden", simArgs},
		{"sweep-loadcurve-pre.golden", lcArgs},
	} {
		want, err := os.ReadFile(filepath.Join("testdata", c.golden))
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range []string{"1", "2", "4"} {
			t.Run(c.golden+"/procs="+procs, func(t *testing.T) {
				var out strings.Builder
				args := append([]string{"-worker-procs", procs}, c.args...)
				if err := cmdSweep(args, &out); err != nil {
					t.Fatal(err)
				}
				if out.String() != string(want) {
					t.Errorf("multi-process output differs from %s at -worker-procs %s:\n--- got ---\n%.2000s\n--- want ---\n%.2000s",
						c.golden, procs, out.String(), want)
				}
			})
		}
	}
}

// TestCmdSweepOutCheckpointResume drives the streaming sinks end to end at
// the CLI layer: a full run produces the reference merged JSONL, then an
// artificially interrupted copy (output and checkpoint truncated mid-stream,
// with a torn half-line appended to each) is resumed and must converge to
// the byte-identical merged stream and the byte-identical rendered table.
func TestCmdSweepOutCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	dir := t.TempDir()
	args := []string{"-mode", "simulate", "-sizes", "2..4", "-designs", "regular,waw+wap",
		"-pattern", "uniform", "-rate", "40", "-messages", "200", "-seed", "9", "-format", "json"}

	// Reference: one uninterrupted run.
	refOut := filepath.Join(dir, "ref.jsonl")
	var refTable strings.Builder
	if err := cmdSweep(append([]string{"-out", refOut}, args...), &refTable); err != nil {
		t.Fatal(err)
	}
	refStream, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted copy: run with -unordered to keep completion order, then
	// truncate both files after the third finished scenario and append torn
	// fragments (what a SIGKILL mid-write leaves behind).
	outPath := filepath.Join(dir, "run.jsonl")
	ckPath := filepath.Join(dir, "run.ckpt")
	var discard strings.Builder
	full := append([]string{"-out", outPath, "-checkpoint", ckPath, "-unordered"}, args...)
	if err := cmdSweep(full, &discard); err != nil {
		t.Fatal(err)
	}
	truncateLines(t, outPath, 3)  // keep 3 result lines
	truncateLines(t, ckPath, 1+3) // keep header + their 3 checkpoint entries
	appendRaw(t, outPath, `{"index":99,"name":"torn`)
	appendRaw(t, ckPath, `{"index":99,"ha`)

	// Resume through a worker subprocess so the full coordinator + sink +
	// merge stack is on the hook for byte-identical convergence.
	var resumedTable strings.Builder
	resumeArgs := append([]string{"-out", outPath, "-checkpoint", ckPath, "-resume",
		"-worker-procs", "2"}, args...)
	if err := cmdSweep(resumeArgs, &resumedTable); err != nil {
		t.Fatal(err)
	}
	gotStream, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotStream) != string(refStream) {
		t.Errorf("resumed merged stream differs from uninterrupted run:\n--- got ---\n%.2000s\n--- want ---\n%.2000s",
			gotStream, refStream)
	}
	if resumedTable.String() != refTable.String() {
		t.Errorf("resumed rendered output differs from uninterrupted run:\n--- got ---\n%.2000s\n--- want ---\n%.2000s",
			resumedTable.String(), refTable.String())
	}

	// The reference stream must be valid spec-ordered JSONL.
	lines := strings.Split(strings.TrimSuffix(string(refStream), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 merged records, got %d", len(lines))
	}
	for i, line := range lines {
		var rec struct {
			Index  int             `json:"index"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("merged line %d is not valid JSON: %v", i, err)
		}
		if rec.Index != i {
			t.Errorf("merged line %d carries index %d; want spec order", i, rec.Index)
		}
		if len(rec.Result) == 0 {
			t.Errorf("merged line %d has no result payload", i)
		}
	}
}

// truncateLines rewrites path to its first n lines.
func truncateLines(t *testing.T, path string, n int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < n {
		t.Fatalf("%s has fewer than %d lines", path, n)
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines[:n], "")), 0o644); err != nil {
		t.Fatal(err)
	}
}

// appendRaw appends a torn fragment (no trailing newline) to path.
func appendRaw(t *testing.T, path, frag string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := io.WriteString(f, frag); err != nil {
		t.Fatal(err)
	}
}

// TestCmdSweepStreamFlagValidation pins the flag-dependency rules of the
// streaming sinks and worker mode: half-configured setups must fail before
// any compute is spent.
func TestCmdSweepStreamFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-checkpoint", "x.ckpt"},            // -checkpoint requires -out
		{"-resume"},                          // -resume requires -checkpoint
		{"-resume", "-out", "x.jsonl"},       // still no checkpoint
		{"-unordered"},                       // -unordered requires -out
		{"-worker-procs", "-2"},              // below the -1 sentinel
		{"-worker", "-sizes", "4"},           // grid flags belong to the coordinator
		{"-worker", "-jobs", "2"},            //
		{"-worker", "-out", "x.jsonl"},       //
		{"-resume", "-checkpoint", "x.ckpt"}, // still requires -out
		{"-out", filepath.Join("no", "such", "dir", "x")} /* uncreatable path */} {
		if err := cmdSweep(append(args, "-sizes", "2"), &strings.Builder{}); err == nil {
			t.Errorf("sweep %v should fail flag validation", args)
		}
	}
	// A missing checkpoint with -resume is a fresh start, not an error.
	dir := t.TempDir()
	var out strings.Builder
	err := cmdSweep([]string{"-sizes", "2", "-out", filepath.Join(dir, "o.jsonl"),
		"-checkpoint", filepath.Join(dir, "o.ckpt"), "-resume"}, &out)
	if err != nil {
		t.Errorf("-resume with no prior checkpoint should start fresh: %v", err)
	}
}

// TestProgressLine checks the stderr progress format: done/total, a rate,
// an ETA once at least one scenario finished.
func TestProgressLine(t *testing.T) {
	line := progressLine(3, 12, 3*time.Second, "sweep/4x4/regular")
	for _, frag := range []string{"3/12", "1.0/s", "ETA 9s", "sweep/4x4/regular"} {
		if !strings.Contains(line, frag) {
			t.Errorf("progress line %q missing %q", line, frag)
		}
	}
	if got := progressLine(0, 5, time.Second, "x"); !strings.Contains(got, "ETA ?") {
		t.Errorf("zero-done progress line should have unknown ETA: %q", got)
	}
}
