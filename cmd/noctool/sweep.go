package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/mesh"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/tablegen"
)

// workerEnv marks a process as a sweep worker. The coordinator sets it when
// spawning `noctool sweep -worker` children so re-exec'd test binaries (which
// cannot parse noctool arguments) recognise the role too.
const workerEnv = "NOCTOOL_SWEEP_WORKER"

// cmdSweep runs a declarative scenario grid (sizes x designs x workloads)
// through the parallel sweep engine and renders the aggregated results.
// Because scenario execution is deterministic and the engine aggregates in
// spec order, the output is identical for -jobs 1 and -jobs N — and, via the
// multi-process executor, for every -worker-procs count and every
// kill/resume schedule (see -out, -checkpoint, -resume).
func cmdSweep(args []string, w io.Writer) error {
	return sweepOn(args, os.Stdin, w)
}

// sweepOn is cmdSweep with the stdin stream injectable for tests (the
// worker mode speaks the line protocol over it).
func sweepOn(args []string, in io.Reader, w io.Writer) error {
	fs, format := newFlagSet("sweep")
	mode := fs.String("mode", "wctt", "scenario mode: wctt, simulate, manycore, parallel-wcet, wcet-map or load-curve")
	topology := fs.String("topology", "mesh", "network topology: mesh, torus, cmesh (4 cores/router) or cmesh2")
	sizes := fs.String("sizes", "2..8", "square mesh sizes, e.g. 2..8 or 2,4,8")
	designs := fs.String("designs", "regular,waw+wap", "comma-separated design points (regular, waw+wap, waw-only, wap-only)")
	workloads := fs.String("workloads", "", "comma-separated EEMBC kernels (manycore mode)")
	jobs := fs.Int("jobs", 0, "parallel workers; 0 = GOMAXPROCS")
	shards := fs.Int("shards", 1, "engine shards per cycle-accurate scenario (simulate and load-curve modes); 1 = serial, 0 = auto (GOMAXPROCS split between concurrent grid points and each point's shard gang)")
	seed := fs.Int64("seed", 1, "pseudo-random seed (simulate and load-curve modes)")
	pattern := fs.String("pattern", "hotspot", "traffic pattern (simulate mode): hotspot, uniform, transpose, bitcomp, neighbor or tornado")
	rate := fs.Int("rate", 0, "traffic injection rate (simulate mode); 0 = pattern default")
	rates := fs.String("rates", "", "injection rates in msgs/node/kcycle (load-curve mode), e.g. 25,50,100 or 100..110; empty = default ladder")
	warmup := fs.Int("warmup", 0, "warmup cycles per load-curve rate point; 0 = default")
	measure := fs.Int("measure", 0, "measurement cycles per load-curve rate point; 0 = default")
	messages := fs.Int("messages", 0, "messages or rounds to inject (simulate mode); 0 = default")
	maxCycles := fs.Int("max-cycles", 0, "cycle budget per scenario; 0 = mode default")
	scale := fs.Int("scale", 0, "workload instruction-count scale-down factor (manycore mode)")
	placement := fs.String("placement", "", "thread placement P0-P3 (parallel-wcet mode)")
	maxPacket := fs.Int("max-packet-flits", 0, "maximum packet size in flits (parallel-wcet mode)")
	progress := fs.Bool("progress", false, "report per-scenario completion with rate and ETA on stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile taken after the sweep to this file")
	worker := fs.Bool("worker", false, "run as a sweep worker: execute scenario specs received on stdin over the JSON-line worker protocol (spawned by the coordinator; see PROTOCOL.md)")
	workerProcs := fs.Int("worker-procs", 0, "fan the grid out to this many `noctool sweep -worker` subprocesses; 0 = in-process, -1 = one per core")
	out := fs.String("out", "", "stream each result as a JSON line to this file the moment it completes, then merge into spec order")
	checkpoint := fs.String("checkpoint", "", "record finished grid indices + result hashes in this file (requires -out); enables -resume")
	resume := fs.Bool("resume", false, "resume an interrupted sweep from -out/-checkpoint, recomputing only unfinished scenarios")
	unordered := fs.Bool("unordered", false, "leave -out in completion order (skip the final spec-order merge)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	explicit := map[string]bool{}
	fs.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })

	// Worker mode: the process is a protocol endpoint, not a grid runner;
	// every grid-shaping flag belongs to the coordinator that spawned us.
	if *worker {
		for name := range explicit {
			if name != "worker" {
				return fmt.Errorf("sweep: flag -%s is not supported with -worker", name)
			}
		}
		// Fault hooks decode from the NOCTOOL_FAULT_* environment seam; a
		// production environment decodes to the zero hooks.
		return sweep.ServeWorker(context.Background(), in, w, sweep.HooksFromEnv(os.Getenv))
	}
	if *checkpoint != "" && *out == "" {
		return fmt.Errorf("sweep: -checkpoint requires -out")
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("sweep: -resume requires -checkpoint")
	}
	if *unordered && *out == "" {
		return fmt.Errorf("sweep: -unordered requires -out")
	}
	if *workerProcs < -1 {
		return fmt.Errorf("sweep: invalid -worker-procs %d", *workerProcs)
	}

	// Validate the output format before spending any compute on the grid.
	f, err := tablegen.ParseFormat(*format)
	if err != nil {
		return err
	}
	m, err := scenario.ParseMode(*mode)
	if err != nil {
		return err
	}
	// Parse the topology up front so a typo fails before any compute; the
	// mode/topology compatibility rules themselves live in Spec.Validate.
	if _, err := mesh.ParseTopology(*topology); err != nil {
		return err
	}
	// The WCET modes model the paper's 64-core platform; the standard
	// placements need an 8x8 mesh or larger, so the generic 2..8 size
	// default would fail outright. Default to the platform size unless
	// the user explicitly picked sizes.
	if (m == scenario.ModeParallelWCET || m == scenario.ModeWCETMap) && !explicit["sizes"] {
		*sizes = "8"
	}
	// The normalised suite map (wcet-map without workloads) already compares
	// both designs in one scenario; crossing it with the design axis would
	// just recompute the identical, design-independent map per design.
	if m == scenario.ModeWCETMap && *workloads == "" {
		*designs = "regular"
	}
	sizeList, err := scenario.ParseSizes(*sizes)
	if err != nil {
		return err
	}
	designList, err := scenario.ParseDesigns(*designs)
	if err != nil {
		return err
	}
	var rateList []int
	if *rates != "" {
		if rateList, err = scenario.ParseRates(*rates); err != nil {
			return err
		}
	}
	// Reject explicitly-set flags the selected mode would silently ignore:
	// the load-curve mode generates its own sustained uniform-random
	// traffic, and only it reads the window flags.
	incompatible := []string{"rates", "warmup", "measure"}
	if m == scenario.ModeLoadCurve {
		incompatible = []string{"pattern", "rate", "messages", "max-cycles",
			"workloads", "scale", "placement", "max-packet-flits"}
	}
	if m != scenario.ModeSimulate && m != scenario.ModeLoadCurve {
		incompatible = append(incompatible, "shards")
	}
	for _, name := range incompatible {
		if explicit[name] {
			return fmt.Errorf("flag -%s is not supported in -mode %v", name, m)
		}
	}
	if *shards < 0 {
		return fmt.Errorf("sweep: negative shard count %d", *shards)
	}
	traf := scenario.Traffic{Pattern: *pattern, Rate: *rate, Messages: *messages}
	if m == scenario.ModeLoadCurve {
		traf = scenario.Traffic{Rates: rateList, WarmupCycles: *warmup, MeasureCycles: *measure}
	}
	spec := scenario.Spec{
		Name:           "sweep",
		Mode:           m,
		Topology:       *topology,
		Sizes:          sizeList,
		Designs:        designList,
		Seed:           *seed,
		Traffic:        traf,
		MaxCycles:      *maxCycles,
		Shards:         *shards,
		Scale:          *scale,
		Placement:      *placement,
		MaxPacketFlits: *maxPacket,
	}
	if *workloads != "" {
		for _, wl := range strings.Split(*workloads, ",") {
			if wl = strings.TrimSpace(wl); wl != "" {
				spec.Workloads = append(spec.Workloads, wl)
			}
		}
	}

	specs, err := spec.Expand()
	if err != nil {
		return err
	}
	total := len(specs)

	// Recover the finished prefix of an interrupted run: confirmed-done
	// indices preload the collector and drop out of the task list, so only
	// unfinished scenarios recompute. Raw result bytes from disk are
	// appended verbatim at merge time, keeping the resumed stream
	// byte-identical to an uninterrupted one.
	var resumed *sweep.Resume
	gridKey := ""
	if *checkpoint != "" {
		if gridKey, err = sweep.GridKey(specs); err != nil {
			return err
		}
	}
	if *resume {
		if resumed, err = sweep.LoadResume(*out, *checkpoint, total, gridKey); err != nil {
			return err
		}
	}
	collector := sweep.NewCollector(total)
	tasks := make([]sweep.Task, 0, total)
	for i, s := range specs {
		if resumed.Done(i) {
			r, err := resumed.Result(i)
			if err != nil {
				return err
			}
			collector.Preset(i, r)
			continue
		}
		tasks = append(tasks, sweep.Task{Index: i, Spec: s})
	}
	already := total - len(tasks)

	// Streaming sinks: the JSONL stream (with optional checkpointing)
	// rides alongside the in-memory collector behind one Tee.
	sinks := []sweep.ResultSink{collector}
	var outFile, ckFile *os.File
	if *out != "" {
		var ckw *sweep.CheckpointWriter
		if *resume {
			if outFile, err = sweep.OpenResumeOutput(*out); err != nil {
				return err
			}
			// Compact the checkpoint to exactly the confirmed-done state
			// (clearing torn lines) and keep appending to it.
			if ckFile, ckw, err = sweep.RewriteCheckpoint(*checkpoint, total, gridKey, resumed); err != nil {
				outFile.Close()
				return err
			}
		} else {
			if outFile, err = os.Create(*out); err != nil {
				return fmt.Errorf("sweep: create -out: %w", err)
			}
			if *checkpoint != "" {
				if ckFile, err = os.Create(*checkpoint); err != nil {
					outFile.Close()
					return fmt.Errorf("sweep: create -checkpoint: %w", err)
				}
				if ckw, err = sweep.NewCheckpointWriter(ckFile, total, gridKey); err != nil {
					outFile.Close()
					ckFile.Close()
					return err
				}
			}
		}
		sinks = append(sinks, sweep.NewJSONLSink(outFile, ckw))
	}
	closeFiles := func() {
		if outFile != nil {
			outFile.Close()
			outFile = nil
		}
		if ckFile != nil {
			ckFile.Close()
			ckFile = nil
		}
	}
	defer closeFiles()

	// The engine shard count is execution policy, not part of the scenario
	// identity: results are byte-identical for every value (pinned by the
	// sharded-equivalence tests), so auto-resolution cannot change output.
	// -shards 0 defers to sweep.AutoShards/AutoSplit, which split GOMAXPROCS
	// between worker processes, concurrent points and each point's shard
	// gang once the grid size is known.
	opts := sweep.Options{Jobs: *jobs, AutoShards: *shards == 0}
	if *progress {
		start := time.Now()
		opts.Progress = func(done, tot int, r scenario.Result) {
			fmt.Fprintln(os.Stderr, progressLine(already+done, already+tot, time.Since(start), r.Name))
		}
	}

	// Executor selection: in-process goroutines by default; -worker-procs
	// fans the grid out to worker subprocesses of this same binary. Output
	// is byte-identical either way (pinned by the coordinator goldens).
	var exec sweep.Executor = sweep.InProcess{}
	if *workerProcs != 0 {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("sweep: locate worker binary: %w", err)
		}
		procs := *workerProcs
		if procs < 0 {
			procs = 0 // AutoSplit: one per core, capped by the grid
		}
		exec = &sweep.Coordinator{
			Command: []string{exe, "sweep", "-worker"},
			Env:     append(os.Environ(), workerEnv+"=1"),
			Procs:   procs,
			Stderr:  os.Stderr,
		}
	}

	// Profiling covers exactly the sweep execution (not flag parsing or
	// rendering), so perf work on the simulator can profile any workload the
	// CLI can express without patching the tool. Both output files are
	// created up front so a bad path fails before any compute is spent.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("sweep: cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("sweep: cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	var memOut *os.File
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("sweep: heap profile: %w", err)
		}
		defer f.Close()
		memOut = f
	}
	err = sweep.Stream(context.Background(), tasks, opts, exec, sweep.Tee(sinks...))
	// Stop explicitly before rendering so the profile really covers only
	// the sweep (the deferred stop only backstops early error returns;
	// StopCPUProfile is a no-op when no profile is active).
	pprof.StopCPUProfile()
	if err != nil {
		return err
	}
	if err := collector.Err(); err != nil {
		// Leave -out in completion order: the run is resumable, and a
		// partial stream must never masquerade as a merged one.
		return err
	}
	closeFiles()
	if *out != "" && !*unordered {
		if err := sweep.MergeJSONL(*out, total); err != nil {
			return err
		}
	}
	if memOut != nil {
		runtime.GC() // settle allocations so the profile shows live heap
		if err := pprof.WriteHeapProfile(memOut); err != nil {
			return fmt.Errorf("sweep: heap profile: %w", err)
		}
	}

	results := collector.Results()
	if f == tablegen.FormatJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return sweepTable(m, results).Render(w, f)
}

// progressLine formats one -progress stderr line: done/total, completion
// rate, remaining-time estimate, and the scenario that just finished.
func progressLine(done, total int, elapsed time.Duration, name string) string {
	rate := float64(done) / max(elapsed.Seconds(), 1e-9)
	eta := "?"
	if done > 0 && done <= total {
		left := time.Duration(float64(total-done) / rate * float64(time.Second))
		eta = left.Round(time.Second).String()
	}
	return fmt.Sprintf("sweep: %d/%d (%.1f/s, ETA %s) %s", done, total, rate, eta, name)
}

// sweepTable renders one row per scenario with mode-appropriate columns.
func sweepTable(m scenario.Mode, results []scenario.Result) *tablegen.Table {
	title := fmt.Sprintf("Sweep — %d %s scenarios", len(results), m)
	switch m {
	case scenario.ModeWCTT:
		t := tablegen.New(title, "scenario", "dim", "design", "max WCTT", "mean WCTT", "min WCTT", "flows")
		for _, r := range results {
			if r.WCTT == nil {
				continue
			}
			t.AddRow(r.Name, r.Dim, r.Design,
				fmt.Sprintf("%d", r.WCTT.MaxCycles), fmt.Sprintf("%.2f", r.WCTT.MeanCycles),
				fmt.Sprintf("%d", r.WCTT.MinCycles), fmt.Sprintf("%d", r.WCTT.Flows))
		}
		return t
	case scenario.ModeSimulate:
		t := tablegen.New(title, "scenario", "dim", "design", "delivered", "cycles", "min lat", "mean lat", "max lat")
		for _, r := range results {
			if r.Sim == nil {
				continue
			}
			t.AddRow(r.Name, r.Dim, r.Design,
				fmt.Sprintf("%d", r.Sim.Delivered), fmt.Sprintf("%d", r.Sim.Cycles),
				fmt.Sprintf("%.0f", r.Sim.MinLatency), fmt.Sprintf("%.1f", r.Sim.MeanLatency),
				fmt.Sprintf("%.0f", r.Sim.MaxLatency))
		}
		return t
	case scenario.ModeManycore:
		t := tablegen.New(title, "scenario", "dim", "design", "workload", "makespan", "mem transactions")
		for _, r := range results {
			if r.Manycore == nil {
				continue
			}
			t.AddRow(r.Name, r.Dim, r.Design, r.Workload,
				fmt.Sprintf("%d", r.Manycore.MakespanCycles), fmt.Sprintf("%d", r.Manycore.MemTransactions))
		}
		return t
	case scenario.ModeLoadCurve:
		t := tablegen.New(title, "scenario", "dim", "design", "rate", "offered", "delivered", "tput", "mean lat", "max lat", "mean net lat", "drained")
		for _, r := range results {
			if r.LoadCurve == nil {
				continue
			}
			for _, p := range r.LoadCurve.Points {
				t.AddRow(r.Name, r.Dim, r.Design,
					fmt.Sprintf("%d", p.RatePerMil), fmt.Sprintf("%d", p.Offered),
					fmt.Sprintf("%d", p.Delivered), fmt.Sprintf("%.1f", p.Throughput),
					fmt.Sprintf("%.1f", p.MeanLatency), fmt.Sprintf("%.0f", p.MaxLatency),
					fmt.Sprintf("%.1f", p.MeanNetworkLatency), fmt.Sprintf("%v", p.Drained))
			}
		}
		return t
	case scenario.ModeParallelWCET:
		t := tablegen.New(title, "scenario", "dim", "design", "placement", "L", "WCET (ms)")
		for _, r := range results {
			if r.WCET == nil {
				continue
			}
			t.AddRow(r.Name, r.Dim, r.Design, r.Placement,
				fmt.Sprintf("%d", r.MaxPacketFlits), fmt.Sprintf("%.2f", r.WCET.Millis))
		}
		return t
	default: // ModeWCETMap: summarise the per-core map per scenario.
		t := tablegen.New(title, "scenario", "dim", "design", "workload", "cores", "min cell", "max cell")
		for _, r := range results {
			if r.WCETMap == nil {
				continue
			}
			cells, minV, maxV := 0, 0.0, 0.0
			first := true
			for _, row := range r.WCETMap {
				for _, v := range row {
					if first {
						minV, maxV = v, v
						first = false
					}
					if v < minV {
						minV = v
					}
					if v > maxV {
						maxV = v
					}
					cells++
				}
			}
			t.AddRow(r.Name, r.Dim, r.Design, r.Workload,
				fmt.Sprintf("%d", cells), fmt.Sprintf("%.4f", minV), fmt.Sprintf("%.4f", maxV))
		}
		return t
	}
}
