package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenOutputs pins the text output of the pre-existing commands: the
// scenario/sweep refactor must keep every table byte-identical to the
// hand-wired implementations it replaced. Regenerate a golden with
//
//	go run ./cmd/noctool <command> [flags] > cmd/noctool/testdata/<name>.golden
//
// only when an output change is intentional.
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		golden string
		cmd    func(args []string, w io.Writer) error
		args   []string
	}{
		{"weights.golden", cmdWeights, nil},
		{"wctt-table.golden", cmdWCTTTable, []string{"-max-size", "5"}},
		{"avionics.golden", cmdAvionics, nil},
		{"area.golden", cmdArea, []string{"-width", "4", "-height", "4"}},
		{"eembc.golden", cmdEEMBC, nil},
		{"avgperf.golden", cmdAvgPerf, []string{"-width", "2", "-height", "2", "-benchmark", "rspeed", "-scale", "500", "-max-cycles", "5000000"}},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			if c.golden == "eembc.golden" && testing.Short() {
				t.Skip("Table III over the full suite is slow")
			}
			want, err := os.ReadFile(filepath.Join("testdata", c.golden))
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			if err := c.cmd(c.args, &out); err != nil {
				t.Fatal(err)
			}
			if out.String() != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", c.golden, out.String(), want)
			}
		})
	}
}

// TestCmdSweepJSON checks the sweep subcommand end to end: a small grid,
// explicit job count, JSON output that parses back into result objects.
func TestCmdSweepJSON(t *testing.T) {
	var out strings.Builder
	err := cmdSweep([]string{"-sizes", "2..4", "-designs", "regular,waw+wap", "-jobs", "4", "-format", "json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var results []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &results); err != nil {
		t.Fatalf("sweep -format json did not emit valid JSON: %v\n%s", err, out.String())
	}
	if len(results) != 6 {
		t.Fatalf("expected 6 results, got %d", len(results))
	}
	if results[0]["design"] != "regular" || results[1]["design"] != "WaW+WaP" {
		t.Errorf("results not in spec order: %v", results)
	}
	for _, r := range results {
		if _, ok := r["wctt"]; !ok {
			t.Errorf("result missing wctt payload: %v", r)
		}
	}
}

// TestCmdSweepDeterministicAcrossJobs runs the same grid serially and with
// eight workers and requires byte-identical output.
func TestCmdSweepDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs string) string {
		var out strings.Builder
		err := cmdSweep([]string{"-sizes", "2..5", "-jobs", jobs, "-format", "csv"}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if one, eight := run("1"), run("8"); one != eight {
		t.Errorf("sweep output differs between -jobs 1 and -jobs 8:\n%s\nvs\n%s", one, eight)
	}
}

// TestCmdSweepLoadCurve checks the load-curve mode end to end: the table
// carries one row per (scenario, rate) point, the JSON parses back into
// results with load_curve payloads, and the output is byte-identical across
// worker counts — the determinism the saturation tables are trusted for.
func TestCmdSweepLoadCurve(t *testing.T) {
	args := []string{"-mode", "load-curve", "-sizes", "2,3", "-rates", "50,300",
		"-warmup", "300", "-measure", "1500"}
	run := func(extra ...string) string {
		var out strings.Builder
		if err := cmdSweep(append(append([]string{}, args...), extra...), &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	text := run("-jobs", "1")
	for _, col := range []string{"rate", "tput", "mean lat", "mean net lat", "drained"} {
		if !strings.Contains(text, col) {
			t.Errorf("load-curve table missing column %q:\n%s", col, text)
		}
	}
	// 2 sizes x 2 designs x 2 rates = 8 data rows (plus title, header, rule).
	if rows := strings.Count(text, "sweep/"); rows != 8 {
		t.Errorf("expected 8 load-curve rows, got %d:\n%s", rows, text)
	}
	if eight := run("-jobs", "8"); eight != text {
		t.Errorf("load-curve output differs between -jobs 1 and -jobs 8:\n%s\nvs\n%s", text, eight)
	}
	var results []map[string]any
	if err := json.Unmarshal([]byte(run("-format", "json")), &results); err != nil {
		t.Fatalf("load-curve -format json did not emit valid JSON: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("expected 4 load-curve results, got %d", len(results))
	}
	for _, r := range results {
		if _, ok := r["load_curve"]; !ok {
			t.Errorf("result missing load_curve payload: %v", r)
		}
	}
	if err := cmdSweep([]string{"-mode", "load-curve", "-rates", "0"}, &strings.Builder{}); err == nil {
		t.Error("zero rate should fail validation")
	}
	if err := cmdSweep([]string{"-mode", "load-curve", "-rates", "1500"}, &strings.Builder{}); err == nil {
		t.Error("rate above the 1000 per-mil offered-load ceiling should fail validation")
	}
	if err := cmdSweep([]string{"-mode", "load-curve", "-rates", "banana"}, &strings.Builder{}); err == nil {
		t.Error("bad rate list should fail")
	}
	// Flags a mode would silently ignore must be rejected, not dropped.
	for _, args := range [][]string{
		{"-mode", "load-curve", "-pattern", "hotspot"},
		{"-mode", "load-curve", "-rate", "80"},
		{"-mode", "load-curve", "-messages", "100"},
		{"-mode", "load-curve", "-workloads", "rspeed"},
		{"-mode", "load-curve", "-placement", "P1"},
		{"-mode", "simulate", "-sizes", "2", "-rates", "25,50"},
		{"-mode", "wctt", "-warmup", "100"},
	} {
		if err := cmdSweep(args, &strings.Builder{}); err == nil {
			t.Errorf("sweep %v should reject the mode-incompatible flag", args)
		}
	}
}

func TestCmdSweepModes(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "simulate", "-sizes", "2,3", "-messages", "50", "-rate", "50"},
		{"-mode", "manycore", "-sizes", "2", "-workloads", "rspeed", "-scale", "500"},
		{"-mode", "load-curve", "-sizes", "2", "-rates", "100", "-warmup", "200", "-measure", "800"},
		// parallel-wcet without -sizes must fall back to the 8x8 platform
		// (the generic 2..8 default has no standard placements).
		{"-mode", "parallel-wcet", "-max-packet-flits", "1"},
	} {
		var out strings.Builder
		if err := cmdSweep(args, &out); err != nil {
			t.Errorf("sweep %v: %v", args, err)
			continue
		}
		if !strings.Contains(out.String(), "regular") || !strings.Contains(out.String(), "WaW+WaP") {
			t.Errorf("sweep %v output missing designs:\n%s", args, out.String())
		}
	}
	var out strings.Builder
	if err := cmdSweep([]string{"-sizes", "banana"}, &out); err == nil {
		t.Error("bad size list should fail")
	}
	if err := cmdSweep([]string{"-designs", "toroidal"}, &out); err == nil {
		t.Error("bad design list should fail")
	}
	if err := cmdSweep([]string{"-mode", "quantum"}, &out); err == nil {
		t.Error("bad mode should fail")
	}
	if err := cmdSweep([]string{"-sizes", "2", "-format", "xml"}, &out); err == nil {
		t.Error("bad format should fail before the sweep runs")
	}
}
